//! Bit-level conversion routines between binary16, binary32 and binary64.
//!
//! All narrowing conversions use round-to-nearest, ties-to-even, computed on
//! integer bit patterns so the result is identical on every host platform.

/// Converts a binary32 bit pattern to a binary16 bit pattern (RNE).
pub(crate) fn f32_to_f16_bits(bits: u32) -> u16 {
    narrow_to_f16(
        u64::from(bits >> 31),
        i32::try_from((bits >> 23) & 0xFF).expect("8-bit field"),
        u64::from(bits & 0x007F_FFFF),
        23,
        127,
        0xFF,
    )
}

/// Converts a binary64 bit pattern to a binary16 bit pattern (RNE).
///
/// A single rounding step: this is *not* equivalent to rounding through
/// binary32 first, which would double-round.
pub(crate) fn f64_to_f16_bits(bits: u64) -> u16 {
    narrow_to_f16(
        bits >> 63,
        i32::try_from((bits >> 52) & 0x7FF).expect("11-bit field"),
        bits & 0x000F_FFFF_FFFF_FFFF,
        52,
        1023,
        0x7FF,
    )
}

/// Shared narrowing kernel.
///
/// * `sign` is 0 or 1.
/// * `exp` is the biased source exponent, `frac` the source fraction field.
/// * `frac_bits` / `bias` / `exp_max` describe the source format.
fn narrow_to_f16(sign: u64, exp: i32, frac: u64, frac_bits: u32, bias: i32, exp_max: i32) -> u16 {
    let sign16 = (sign as u16) << 15;

    if exp == exp_max {
        // Infinity or NaN.
        if frac == 0 {
            return sign16 | 0x7C00;
        }
        // Quiet NaN preserving the top payload bits; always set the quiet
        // bit so a signalling NaN does not narrow to infinity.
        let payload = (frac >> (frac_bits - 10)) as u16 & 0x03FF;
        return sign16 | 0x7C00 | 0x0200 | payload;
    }

    // Unbiased source exponent. Source subnormals (exp == 0) carry no
    // implicit bit; they sit far below f16's subnormal range and fall
    // through the generic underflow path to zero.
    let unbiased = exp - bias;

    // Biased target exponent if the value stays normal.
    let e16 = unbiased + 15;

    if e16 >= 0x1F {
        return sign16 | 0x7C00; // overflow to infinity
    }

    let implicit = u64::from(exp != 0) << frac_bits;
    let sig = implicit | frac;

    if e16 >= 1 {
        // Normal result: `rounded` keeps the implicit bit at position 10,
        // so it represents [0x400, 0x800]; adding it to (e16-1)<<10 both
        // composes the fields and lets a rounding carry bump the exponent
        // (including MAX → infinity).
        let rounded = shift_round_rne(sig, frac_bits - 10) as u16;
        return sign16 | (((e16 as u16 - 1) << 10) + rounded);
    }

    // Subnormal or zero result. One unit in the last place of an f16
    // subnormal is 2^-24; shift so the significand is in those units.
    let extra = (1 - e16) as u32; // >= 1 here
    let shift = frac_bits - 10 + extra;
    if shift >= 64 {
        return sign16; // vanishes entirely
    }
    // `rounded` <= 0x400; the carry case is exactly the promotion to the
    // smallest normal number.
    sign16 | shift_round_rne(sig, shift) as u16
}

/// Shifts `sig` right by `shift` bits, rounding to nearest with ties to
/// even. `shift` must be < 64.
fn shift_round_rne(sig: u64, shift: u32) -> u64 {
    if shift == 0 {
        return sig;
    }
    let kept = sig >> shift;
    let round_bit = (sig >> (shift - 1)) & 1;
    let sticky = shift >= 2 && (sig & ((1u64 << (shift - 1)) - 1)) != 0;
    if round_bit == 1 && (sticky || kept & 1 == 1) {
        kept + 1
    } else {
        kept
    }
}

/// Converts a binary16 bit pattern to a binary32 bit pattern. Exact.
pub(crate) fn f16_bits_to_f32(bits: u16) -> u32 {
    let sign = u32::from(bits >> 15) << 31;
    let exp = u32::from((bits >> 10) & 0x1F);
    let frac = u32::from(bits & 0x03FF);

    if exp == 0x1F {
        // Infinity / NaN: widen payload into the top fraction bits.
        return sign | 0x7F80_0000 | (frac << 13);
    }
    if exp == 0 {
        if frac == 0 {
            return sign; // signed zero
        }
        // Subnormal: value = frac × 2^-24. Normalize into f32.
        let lz = frac.leading_zeros() - 22; // zeros above bit 9
        let shifted = frac << (lz + 1); // implicit bit now at bit 10
        let e32 = 127 - 15 - lz;
        return sign | (e32 << 23) | ((shifted & 0x03FF) << 13);
    }
    // Normal.
    let e32 = exp + 127 - 15;
    sign | (e32 << 23) | (frac << 13)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32_to_f16(x: f32) -> u16 {
        f32_to_f16_bits(x.to_bits())
    }

    fn f16_to_f32(bits: u16) -> f32 {
        f32::from_bits(f16_bits_to_f32(bits))
    }

    #[test]
    fn exact_small_integers() {
        for i in -2048..=2048i32 {
            let x = i as f32;
            let h = f32_to_f16(x);
            assert_eq!(f16_to_f32(h), x, "integer {i} must be exact in f16");
        }
    }

    #[test]
    fn powers_of_two_round_trip() {
        for e in -24..=15i32 {
            let x = (2.0f64).powi(e);
            let h = f64_to_f16_bits(x.to_bits());
            assert_eq!(f64::from(f16_to_f32(h)), x, "2^{e}");
        }
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        // 65520 is the midpoint between MAX=65504 and the next step 65536;
        // ties-to-even picks the "even" 65536 which overflows to infinity.
        assert_eq!(f32_to_f16(65520.0), 0x7C00);
        assert_eq!(f32_to_f16(1e9), 0x7C00);
        assert_eq!(f32_to_f16(-1e9), 0xFC00);
        // Just below the rounding boundary stays MAX.
        assert_eq!(f32_to_f16(65519.0), 0x7BFF);
    }

    #[test]
    fn underflow_rounds_to_zero_or_subnormal() {
        assert_eq!(f32_to_f16(1e-10), 0x0000);
        assert_eq!(f32_to_f16(-1e-10), 0x8000);
        // 2^-24 is the smallest subnormal.
        assert_eq!(f32_to_f16((2.0f32).powi(-24)), 0x0001);
        // 2^-25 is a tie between 0 and the smallest subnormal: even → 0.
        assert_eq!(f32_to_f16((2.0f32).powi(-25)), 0x0000);
        // Slightly above the tie rounds up.
        assert_eq!(f32_to_f16((2.0f32).powi(-25) * 1.5), 0x0001);
        // f32's own subnormals vanish.
        assert_eq!(f32_to_f16(f32::from_bits(1)), 0x0000);
        assert_eq!(f64_to_f16_bits(f64::from_bits(1).to_bits()), 0x0000);
    }

    #[test]
    fn ties_round_to_even() {
        // 1.0 + 2^-11 is exactly between 1.0 and 1.0+2^-10 → even → 1.0.
        let tie = 1.0f32 + (2.0f32).powi(-11);
        assert_eq!(f32_to_f16(tie), 0x3C00);
        // 1.0 + 3×2^-11 is between 1+2^-10 and 1+2^-9 → even → 1+2^-9.
        let tie2 = 1.0f32 + 3.0 * (2.0f32).powi(-11);
        assert_eq!(f32_to_f16(tie2), 0x3C02);
    }

    #[test]
    fn rounding_carry_promotes_subnormal_to_normal() {
        // Largest subnormal is 0x3FF × 2^-24; halfway to MIN_POSITIVE
        // rounds up into the normal range (tie → even 0x400).
        let largest_sub = 1023.0f64 * (2.0f64).powi(-24);
        let min_normal = (2.0f64).powi(-14);
        let mid = (largest_sub + min_normal) / 2.0;
        assert_eq!(f64_to_f16_bits(mid.to_bits()), 0x0400);
    }

    #[test]
    fn nan_narrowing_stays_nan() {
        let h = f32_to_f16(f32::NAN);
        assert!((h & 0x7FFF) > 0x7C00, "bits {h:#06x} must be NaN");
        let h64 = f64_to_f16_bits(f64::NAN.to_bits());
        assert!((h64 & 0x7FFF) > 0x7C00);
    }

    #[test]
    fn signalling_nan_does_not_become_infinity() {
        // An f32 NaN whose payload sits only in the low fraction bits
        // would shift to zero without the forced quiet bit.
        let h = f32_to_f16_bits(0x7F80_0001);
        assert!((h & 0x7FFF) > 0x7C00, "bits {h:#06x}");
        let h64 = f64_to_f16_bits(0x7FF0_0000_0000_0001);
        assert!((h64 & 0x7FFF) > 0x7C00, "bits {h64:#06x}");
    }

    #[test]
    fn f64_direct_narrowing_is_correctly_rounded_near_ties() {
        // A value a hair below the f16 tie 1 + 2^-11 must round down to
        // 1.0; compare against ground truth via neighbours.
        let tie = 1.0f64 + (2.0f64).powi(-11);
        let below = tie - (2.0f64).powi(-40);
        let lo = f64::from(f16_to_f32(0x3C00));
        let hi = f64::from(f16_to_f32(0x3C01));
        assert!(below - lo < hi - below);
        assert_eq!(f64_to_f16_bits(below.to_bits()), 0x3C00);
        // And a hair above rounds up.
        let above = tie + (2.0f64).powi(-40);
        assert_eq!(f64_to_f16_bits(above.to_bits()), 0x3C01);
    }

    #[test]
    fn widening_subnormals_is_exact() {
        for bits in 1u16..0x0400 {
            let wide = f16_to_f32(bits);
            let expected = f64::from(bits) * (2.0f64).powi(-24);
            assert_eq!(f64::from(wide), expected, "subnormal {bits:#06x}");
        }
    }

    #[test]
    fn every_f16_round_trips_through_f32() {
        for bits in 0..=u16::MAX {
            let is_nan = (bits & 0x7FFF) > 0x7C00;
            let wide = f16_to_f32(bits);
            let back = f32_to_f16(wide);
            if is_nan {
                assert!((back & 0x7FFF) > 0x7C00, "{bits:#06x} NaN preserved");
            } else {
                assert_eq!(back, bits, "{bits:#06x} must survive f16→f32→f16");
            }
        }
    }

    #[test]
    fn every_f16_round_trips_through_f64() {
        for bits in 0..=u16::MAX {
            if (bits & 0x7FFF) > 0x7C00 {
                continue;
            }
            let wide = f64::from(f16_to_f32(bits));
            assert_eq!(f64_to_f16_bits(wide.to_bits()), bits, "{bits:#06x}");
        }
    }

    #[test]
    fn narrowing_agrees_with_exhaustive_nearest_neighbour_search() {
        // For a dense sample of f32 inputs, check RNE against a brute
        // force over all finite f16 values.
        let mut finite: Vec<(u16, f64)> = (0..=u16::MAX)
            .filter(|b| (b & 0x7C00) != 0x7C00)
            .map(|b| (b, f64::from(f16_to_f32(b))))
            .collect();
        finite.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

        let mut x = -70000.0f32;
        while x < 70000.0 {
            let got = f32_to_f16(x);
            let xd = f64::from(x);
            // Brute-force nearest (ties to even bit pattern).
            let mut best = finite[0];
            let mut best_d = (finite[0].1 - xd).abs();
            for &(b, v) in &finite {
                let d = (v - xd).abs();
                if d < best_d || (d == best_d && (b & 1) == 0 && (best.0 & 1) == 1) {
                    best = (b, v);
                    best_d = d;
                }
            }
            let expected = if xd.abs() > 65504.0 + 16.0 {
                // beyond the halfway point past MAX → infinity
                if x > 0.0 {
                    0x7C00
                } else {
                    0xFC00
                }
            } else if best.1 == 0.0 {
                // keep the input's sign on zero results
                if x.is_sign_negative() {
                    0x8000
                } else {
                    0x0000
                }
            } else {
                best.0
            };
            assert_eq!(got, expected, "x = {x}");
            x += 977.7573; // irregular stride to hit varied fractions
        }
    }
}
