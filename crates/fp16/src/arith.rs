//! Arithmetic operators for [`F16`].
//!
//! Every operation widens both operands to `f32`, computes there, and rounds
//! back to binary16 once. `f32` has 24 significand bits ≥ 2·11 + 2, so by
//! Figueroa's double-rounding theorem the results of `+`, `-`, `*`, `/` are
//! identical to directly-computed, correctly-rounded binary16 arithmetic.

use crate::F16;
use core::iter::{Product, Sum};
use core::ops::{
    Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Rem, RemAssign, Sub, SubAssign,
};

macro_rules! widen_binop {
    ($trait_:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait_ for F16 {
            type Output = F16;

            #[inline]
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }

        impl $assign_trait for F16 {
            #[inline]
            fn $assign_method(&mut self, rhs: F16) {
                *self = *self $op rhs;
            }
        }
    };
}

widen_binop!(Add, add, AddAssign, add_assign, +);
widen_binop!(Sub, sub, SubAssign, sub_assign, -);
widen_binop!(Mul, mul, MulAssign, mul_assign, *);
widen_binop!(Div, div, DivAssign, div_assign, /);
widen_binop!(Rem, rem, RemAssign, rem_assign, %);

impl Neg for F16 {
    type Output = F16;

    #[inline]
    fn neg(self) -> F16 {
        F16::from_bits(self.to_bits() ^ 0x8000)
    }
}

impl Sum for F16 {
    fn sum<I: Iterator<Item = F16>>(iter: I) -> F16 {
        iter.fold(F16::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a F16> for F16 {
    fn sum<I: Iterator<Item = &'a F16>>(iter: I) -> F16 {
        iter.copied().sum()
    }
}

impl Product for F16 {
    fn product<I: Iterator<Item = F16>>(iter: I) -> F16 {
        iter.fold(F16::ONE, Mul::mul)
    }
}

impl<'a> Product<&'a F16> for F16 {
    fn product<I: Iterator<Item = &'a F16>>(iter: I) -> F16 {
        iter.copied().product()
    }
}

impl F16 {
    /// Fused multiply-add `self * a + b`, rounded once at the end.
    ///
    /// The product of two binary16 values is exact in `f64`, and the
    /// subsequent addition is correctly rounded from `f64`, so this matches
    /// a hardware `fma.f16`.
    #[inline]
    #[must_use]
    pub fn mul_add(self, a: F16, b: F16) -> F16 {
        F16::from_f64(self.to_f64() * a.to_f64() + b.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(x: f32) -> F16 {
        F16::from_f32(x)
    }

    #[test]
    fn basic_arithmetic() {
        assert_eq!((h(1.5) + h(2.25)).to_f32(), 3.75);
        assert_eq!((h(5.0) - h(2.0)).to_f32(), 3.0);
        assert_eq!((h(3.0) * h(4.0)).to_f32(), 12.0);
        assert_eq!((h(9.0) / h(2.0)).to_f32(), 4.5);
        assert_eq!((h(7.0) % h(4.0)).to_f32(), 3.0);
        assert_eq!((-h(2.0)).to_f32(), -2.0);
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let mut x = h(1.0);
        x += h(2.0);
        assert_eq!(x, h(3.0));
        x -= h(1.0);
        assert_eq!(x, h(2.0));
        x *= h(4.0);
        assert_eq!(x, h(8.0));
        x /= h(2.0);
        assert_eq!(x, h(4.0));
        x %= h(3.0);
        assert_eq!(x, h(1.0));
    }

    #[test]
    fn addition_saturates_to_infinity_in_range_overflow() {
        let big = F16::MAX;
        assert!(
            !(big + F16::ONE).is_infinite(),
            "65504+1 rounds back to MAX"
        );
        assert!((big + big).is_infinite());
        assert!((h(40000.0) + h(40000.0)).is_infinite());
    }

    #[test]
    fn multiplication_loses_small_products_to_zero() {
        let tiny = F16::MIN_POSITIVE_SUBNORMAL;
        assert!(
            (tiny * tiny).is_zero(),
            "underflow flushes to zero by rounding"
        );
    }

    #[test]
    fn precision_is_eleven_bits() {
        // 2048 + 1 is not representable: rounds to 2048 (ties-to-even).
        assert_eq!((h(2048.0) + h(1.0)).to_f32(), 2048.0);
        // 2048 + 2 is representable.
        assert_eq!((h(2048.0) + h(2.0)).to_f32(), 2050.0);
    }

    #[test]
    fn division_by_zero_follows_ieee() {
        assert!((h(1.0) / F16::ZERO).is_infinite());
        assert!((h(-1.0) / F16::ZERO).is_sign_negative());
        assert!((F16::ZERO / F16::ZERO).is_nan());
    }

    #[test]
    fn nan_propagates_through_all_ops() {
        for f in [Add::add, Sub::sub, Mul::mul, Div::div, Rem::rem] as [fn(F16, F16) -> F16; 5] {
            assert!(f(F16::NAN, h(1.0)).is_nan());
            assert!(f(h(1.0), F16::NAN).is_nan());
        }
    }

    #[test]
    fn neg_flips_zero_sign() {
        assert!((-F16::ZERO).is_sign_negative());
        assert!((-F16::NEG_ZERO).is_sign_positive());
    }

    #[test]
    fn sum_and_product_fold_in_order() {
        let xs = [h(1.0), h(2.0), h(3.0)];
        assert_eq!(xs.iter().sum::<F16>(), h(6.0));
        assert_eq!(xs.iter().product::<F16>(), h(6.0));
        assert_eq!(Vec::<F16>::new().into_iter().sum::<F16>(), F16::ZERO);
        assert_eq!(Vec::<F16>::new().into_iter().product::<F16>(), F16::ONE);
    }

    #[test]
    fn mul_add_rounds_once() {
        // x*y alone rounds down to a value whose sum with b differs from
        // the fused result. Pick x = 1+2^-10 so x*x = 1 + 2^-9 + 2^-20;
        // the 2^-20 term survives only in the fused path.
        let x = F16::from_bits(0x3C01); // 1 + 2^-10
        let fused = x.mul_add(x, F16::from_bits(0x3C01));
        let unfused = x * x + F16::from_bits(0x3C01);
        // fused: 2 + 2^-9 + 2^-10 + 2^-20 → rounds to 2 + 2^-9 + 2^-10 ulp-wise
        // unfused: (1+2^-9) + (1+2^-10)
        // Both land in range; what matters is single rounding:
        let exact = (1.0 + 2f64.powi(-10)) * (1.0 + 2f64.powi(-10)) + (1.0 + 2f64.powi(-10));
        assert_eq!(fused, F16::from_f64(exact));
        let _ = unfused;
    }

    #[test]
    fn exhaustive_addition_against_f64_oracle() {
        // A coarse lattice over all exponent ranges: widening to f64 and
        // rounding once must equal our f32-widened implementation.
        let mut bits = 0u16;
        loop {
            let a = F16::from_bits(bits);
            let b = F16::from_bits(bits.wrapping_mul(2654435761u32 as u16).wrapping_add(17));
            if !a.is_nan() && !b.is_nan() {
                let via_f64 = F16::from_f64(a.to_f64() + b.to_f64());
                let got = a + b;
                if !via_f64.is_nan() {
                    assert_eq!(got.to_bits(), via_f64.to_bits(), "a={a:?} b={b:?}");
                }
            }
            bits = bits.wrapping_add(97);
            if bits < 97 {
                break;
            }
        }
    }
}
