//! Property-based tests for the binary16 softfloat.

use prescaler_fp16::F16;
use proptest::prelude::*;

/// Strategy over all non-NaN f16 bit patterns.
fn finite_or_inf_f16() -> impl Strategy<Value = F16> {
    any::<u16>()
        .prop_map(F16::from_bits)
        .prop_filter("not NaN", |x| !x.is_nan())
}

/// Strategy over finite f16 values.
fn finite_f16() -> impl Strategy<Value = F16> {
    any::<u16>()
        .prop_map(F16::from_bits)
        .prop_filter("finite", |x| x.is_finite())
}

proptest! {
    /// Widening then narrowing is the identity on non-NaN values.
    #[test]
    fn round_trip_f32(x in finite_or_inf_f16()) {
        let back = F16::from_f32(x.to_f32());
        prop_assert_eq!(back.to_bits(), x.to_bits());
    }

    /// Widening then narrowing through f64 is the identity on non-NaN values.
    #[test]
    fn round_trip_f64(x in finite_or_inf_f16()) {
        let back = F16::from_f64(x.to_f64());
        prop_assert_eq!(back.to_bits(), x.to_bits());
    }

    /// Narrowing any f32 never increases the distance versus the two
    /// neighbouring f16 values: the result is one of the two closest.
    #[test]
    fn narrowing_is_faithful(x in -1.0e5f32..1.0e5f32) {
        let h = F16::from_f32(x);
        if h.is_finite() {
            let err = (h.to_f32() - x).abs();
            // Half an ulp at the magnitude of x, conservatively bounded by
            // x * 2^-11 + smallest subnormal.
            let bound = x.abs() * 2f32.powi(-11) + 2f32.powi(-24);
            prop_assert!(err <= bound, "x={x} h={h:?} err={err} bound={bound}");
        }
    }

    /// Addition commutes.
    #[test]
    fn add_commutes(a in finite_f16(), b in finite_f16()) {
        let ab = a + b;
        let ba = b + a;
        if !ab.is_nan() {
            prop_assert_eq!(ab.to_bits(), ba.to_bits());
        }
    }

    /// Multiplication commutes.
    #[test]
    fn mul_commutes(a in finite_f16(), b in finite_f16()) {
        let ab = a * b;
        let ba = b * a;
        if !ab.is_nan() {
            prop_assert_eq!(ab.to_bits(), ba.to_bits());
        }
    }

    /// x + 0 == x (except for -0 + 0 which normalizes to +0).
    #[test]
    fn additive_identity(a in finite_f16()) {
        let r = a + F16::ZERO;
        if a.is_zero() {
            prop_assert!(r.is_zero());
        } else {
            prop_assert_eq!(r.to_bits(), a.to_bits());
        }
    }

    /// x * 1 == x.
    #[test]
    fn multiplicative_identity(a in finite_f16()) {
        prop_assert_eq!((a * F16::ONE).to_bits(), a.to_bits());
    }

    /// Negation is an involution and flips exactly the sign bit.
    #[test]
    fn neg_involution(a in any::<u16>().prop_map(F16::from_bits)) {
        prop_assert_eq!((-(-a)).to_bits(), a.to_bits());
        prop_assert_eq!((-a).to_bits(), a.to_bits() ^ 0x8000);
    }

    /// Subtraction of equal values yields zero.
    #[test]
    fn self_subtraction_is_zero(a in finite_f16()) {
        prop_assert!((a - a).is_zero());
    }

    /// Division agrees with the f64-widened, once-rounded oracle.
    #[test]
    fn div_matches_f64_oracle(a in finite_f16(), b in finite_f16()) {
        prop_assume!(!b.is_zero());
        let got = a / b;
        let oracle = F16::from_f64(a.to_f64() / b.to_f64());
        if got.is_nan() {
            prop_assert!(oracle.is_nan());
        } else {
            prop_assert_eq!(got.to_bits(), oracle.to_bits());
        }
    }

    /// `total_cmp` is consistent with `partial_cmp` on comparable values.
    #[test]
    fn total_cmp_refines_partial_cmp(a in finite_f16(), b in finite_f16()) {
        if let Some(ord) = a.partial_cmp(&b) {
            if !(a.is_zero() && b.is_zero()) {
                prop_assert_eq!(a.total_cmp(b), ord);
            }
        }
    }

    /// Monotonicity: widening preserves order.
    #[test]
    fn widening_preserves_order(a in finite_f16(), b in finite_f16()) {
        if a < b {
            prop_assert!(a.to_f32() < b.to_f32());
            prop_assert!(a.to_f64() < b.to_f64());
        }
    }

    /// Parsing the display form loses at most one rounding step, and
    /// printing is stable (parse∘print is identity for finite values).
    #[test]
    fn display_parse_round_trip(a in finite_f16()) {
        let s = a.to_string();
        let back: F16 = s.parse().unwrap();
        prop_assert_eq!(back.to_bits(), a.to_bits(), "{}", s);
    }
}
