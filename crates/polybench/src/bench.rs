//! The [`PolyApp`] type: any of the fourteen benchmarks as a runnable
//! [`HostApp`].

use crate::apps::{linalg, stats, stencil, vector};
use crate::input::{InputGen, InputSet};
use crate::spec::{BenchKind, Dims};
use prescaler_ir::Program;
use prescaler_ocl::{HostApp, OclError, Outputs, Session};

/// One configured benchmark instance: kind, dimensions, input set, seed.
#[derive(Clone, Debug)]
pub struct PolyApp {
    kind: BenchKind,
    dims: Dims,
    input: InputSet,
    seed: u64,
    gain: f64,
}

impl PolyApp {
    /// A benchmark at explicit dimensions.
    #[must_use]
    pub fn new(kind: BenchKind, dims: Dims, input: InputSet, seed: u64) -> PolyApp {
        PolyApp {
            kind,
            dims,
            input,
            seed,
            gain: 1.0,
        }
    }

    /// The experiment-scale instance used for figures (scale 1.0).
    #[must_use]
    pub fn paper(kind: BenchKind, input: InputSet) -> PolyApp {
        PolyApp::new(kind, kind.dims(1.0), input, 0xC60_2020)
    }

    /// A scaled-down instance (same character, less interpretation work).
    #[must_use]
    pub fn scaled(kind: BenchKind, input: InputSet, scale: f64) -> PolyApp {
        PolyApp::new(kind, kind.dims(scale), input, 0xC60_2020)
    }

    /// A tiny instance for unit tests.
    #[must_use]
    pub fn tiny(kind: BenchKind) -> PolyApp {
        PolyApp::new(kind, kind.test_dims(), InputSet::Default, 7)
    }

    /// The benchmark kind.
    #[must_use]
    pub fn kind(&self) -> BenchKind {
        self.kind
    }

    /// The configured dimensions.
    #[must_use]
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    /// The configured input set.
    #[must_use]
    pub fn input_set(&self) -> InputSet {
        self.input
    }

    /// A copy running a different input set.
    #[must_use]
    pub fn with_input(mut self, input: InputSet) -> PolyApp {
        self.input = input;
        self
    }

    /// A copy whose generated inputs are scaled by `gain` — models input
    /// drift in production. Gain `1.0` is an exact no-op, so an undrifted
    /// copy runs bit-identically to the original.
    #[must_use]
    pub fn with_input_gain(mut self, gain: f64) -> PolyApp {
        self.gain = gain;
        self
    }

    /// The configured input gain.
    #[must_use]
    pub fn input_gain(&self) -> f64 {
        self.gain
    }

    fn gen(&self) -> InputGen {
        InputGen::new(self.input, self.kind.default_range(), self.seed).with_gain(self.gain)
    }
}

impl HostApp for PolyApp {
    fn name(&self) -> &str {
        self.kind.name()
    }

    fn program(&self) -> Program {
        match self.kind {
            BenchKind::Gemm => linalg::gemm_program(),
            BenchKind::TwoMM => linalg::twomm_program(),
            BenchKind::ThreeMM => linalg::threemm_program(),
            BenchKind::Syrk => linalg::syrk_program(),
            BenchKind::Syr2k => linalg::syr2k_program(),
            BenchKind::Atax => vector::atax_program(),
            BenchKind::Bicg => vector::bicg_program(),
            BenchKind::Mvt => vector::mvt_program(),
            BenchKind::Gesummv => vector::gesummv_program(),
            BenchKind::TwoDConv => stencil::twodconv_program(),
            BenchKind::ThreeDConv => stencil::threedconv_program(),
            BenchKind::Fdtd2d => stencil::fdtd2d_program(),
            BenchKind::Corr => stats::corr_program(),
            BenchKind::Covar => stats::covar_program(),
        }
    }

    fn run(&self, session: &mut Session) -> Result<Outputs, OclError> {
        let gen = self.gen();
        let d = &self.dims;
        match self.kind {
            BenchKind::Gemm => linalg::gemm_run(session, d, &gen),
            BenchKind::TwoMM => linalg::twomm_run(session, d, &gen),
            BenchKind::ThreeMM => linalg::threemm_run(session, d, &gen),
            BenchKind::Syrk => linalg::syrk_run(session, d, &gen),
            BenchKind::Syr2k => linalg::syr2k_run(session, d, &gen),
            BenchKind::Atax => vector::atax_run(session, d, &gen),
            BenchKind::Bicg => vector::bicg_run(session, d, &gen),
            BenchKind::Mvt => vector::mvt_run(session, d, &gen),
            BenchKind::Gesummv => vector::gesummv_run(session, d, &gen),
            BenchKind::TwoDConv => stencil::twodconv_run(session, d, &gen),
            BenchKind::ThreeDConv => stencil::threedconv_run(session, d, &gen),
            BenchKind::Fdtd2d => stencil::fdtd2d_run(session, d, &gen),
            BenchKind::Corr => stats::corr_run(session, d, &gen),
            BenchKind::Covar => stats::covar_run(session, d, &gen),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::output_quality;
    use prescaler_ir::typeck::check_program;
    use prescaler_ir::Precision;
    use prescaler_ocl::{run_app, ScalingSpec};
    use prescaler_sim::SystemModel;

    #[test]
    fn every_program_type_checks() {
        for kind in BenchKind::ALL {
            let app = PolyApp::tiny(kind);
            check_program(&app.program()).unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }

    #[test]
    fn every_benchmark_runs_at_baseline() {
        let system = SystemModel::system1();
        for kind in BenchKind::ALL {
            let app = PolyApp::tiny(kind);
            let (outs, log) = run_app(&app, &system, &ScalingSpec::baseline())
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(!outs.is_empty(), "{kind} produced no outputs");
            assert!(
                log.timeline.total() > prescaler_sim::SimTime::ZERO,
                "{kind} accounted no time"
            );
            for (name, data) in &outs {
                assert_eq!(
                    data.count_non_finite(),
                    0,
                    "{kind} output {name} has non-finite values at f64"
                );
            }
        }
    }

    #[test]
    fn baseline_runs_are_deterministic() {
        let system = SystemModel::system1();
        for kind in [BenchKind::Gemm, BenchKind::Corr, BenchKind::Fdtd2d] {
            let app = PolyApp::tiny(kind);
            let (a, _) = run_app(&app, &system, &ScalingSpec::baseline()).unwrap();
            let (b, _) = run_app(&app, &system, &ScalingSpec::baseline()).unwrap();
            assert_eq!(a, b, "{kind} must be bit-deterministic");
        }
    }

    #[test]
    fn gemm_matches_plain_rust_reference() {
        let app = PolyApp::tiny(BenchKind::Gemm);
        let d = *app.dims();
        let gen = app.gen();
        let (outs, _) = run_app(&app, &SystemModel::system1(), &ScalingSpec::baseline()).unwrap();
        let a = gen.array("A", d.ni * d.nk).to_f64_vec();
        let b = gen.array("B", d.nk * d.nj).to_f64_vec();
        let c = gen.array("C", d.ni * d.nj).to_f64_vec();
        let expected = crate::apps::linalg::gemm_reference(&a, &b, &c, d.ni, d.nj, d.nk, 1.5, 1.2);
        let got = outs[0].1.to_f64_vec();
        assert_eq!(
            got, expected,
            "baseline GEMM must be bit-exact vs reference"
        );
    }

    #[test]
    fn single_precision_scaling_degrades_quality_gently() {
        let system = SystemModel::system1();
        let app = PolyApp::tiny(BenchKind::Gemm);
        let (reference, _) = run_app(&app, &system, &ScalingSpec::baseline()).unwrap();
        let mut spec = ScalingSpec::baseline();
        for label in ["A", "B", "C"] {
            spec = spec.with_target(label, Precision::Single);
        }
        let (scaled, _) = run_app(&app, &system, &spec).unwrap();
        let q = output_quality(&reference, &scaled);
        assert!(q > 0.999, "single precision GEMM quality {q}");
        assert!(q < 1.0, "but not bit-identical");
    }

    #[test]
    fn half_precision_overflows_gemm_default_inputs() {
        // GEMM's default range (0..513) with an inner product overflows
        // binary16's 65504 — the paper's §3.2.3 failure mode.
        let system = SystemModel::system1();
        let app = PolyApp::new(BenchKind::Gemm, Dims::square(32), InputSet::Default, 7);
        let (reference, _) = run_app(&app, &system, &ScalingSpec::baseline()).unwrap();
        let mut spec = ScalingSpec::baseline();
        for label in ["A", "B", "C"] {
            spec = spec.with_target(label, Precision::Half);
        }
        let (scaled, _) = run_app(&app, &system, &spec).unwrap();
        let q = output_quality(&reference, &scaled);
        assert!(
            q < 0.9,
            "half GEMM on default inputs must fail TOQ, got {q}"
        );
    }

    #[test]
    fn half_precision_survives_random_inputs() {
        // With inputs in 0..1 the inner products stay in range and half
        // precision passes TOQ 0.9 — the paper's Fig. 12 effect.
        let system = SystemModel::system1();
        let app = PolyApp::new(BenchKind::Gemm, Dims::square(16), InputSet::Random, 7);
        let (reference, _) = run_app(&app, &system, &ScalingSpec::baseline()).unwrap();
        let mut spec = ScalingSpec::baseline();
        for label in ["A", "B", "C"] {
            spec = spec.with_target(label, Precision::Half);
        }
        let (scaled, _) = run_app(&app, &system, &spec).unwrap();
        let q = output_quality(&reference, &scaled);
        assert!(
            q > 0.9,
            "half GEMM on random inputs should pass TOQ, got {q}"
        );
    }

    #[test]
    fn unit_input_gain_is_an_exact_noop() {
        let system = SystemModel::system1();
        let app = PolyApp::tiny(BenchKind::Gemm);
        let (a, la) = run_app(&app, &system, &ScalingSpec::baseline()).unwrap();
        let drifted = app.clone().with_input_gain(1.0);
        let (b, lb) = run_app(&drifted, &system, &ScalingSpec::baseline()).unwrap();
        assert_eq!(a, b, "gain 1.0 must be bit-identical");
        assert_eq!(la.timeline.total(), lb.timeline.total());
    }

    #[test]
    fn input_drift_breaks_half_precision_on_random_inputs() {
        // Random inputs pass TOQ at half precision (Fig. 12); a large
        // enough gain pushes the inner products past binary16 range and
        // quality collapses — the scenario the guard exists to catch.
        let system = SystemModel::system1();
        let app = PolyApp::new(BenchKind::Gemm, Dims::square(16), InputSet::Random, 7);
        let mut spec = ScalingSpec::baseline();
        for label in ["A", "B", "C"] {
            spec = spec.with_target(label, Precision::Half);
        }
        let drifted = app.clone().with_input_gain(256.0);
        let (reference, _) = run_app(&drifted, &system, &ScalingSpec::baseline()).unwrap();
        let (scaled, _) = run_app(&drifted, &system, &spec).unwrap();
        let q = output_quality(&reference, &scaled);
        assert!(q < 0.9, "drifted half GEMM should fail TOQ, got {q}");
    }

    #[test]
    fn compute_intensive_benchmarks_have_higher_kernel_fraction() {
        // The paper's Fig. 4 categorization must emerge from the cost
        // model. The absolute fractions need experiment-scale sizes (the
        // figures harness checks those); at test scale the *ordering*
        // between an O(N³) and an O(N²) benchmark already shows.
        let system = SystemModel::system1();
        let frac = |kind: BenchKind| {
            let app = PolyApp::scaled(kind, InputSet::Default, 0.05);
            let (_, log) = run_app(&app, &system, &ScalingSpec::baseline()).unwrap();
            let kernel = log.timeline.kernel;
            kernel / (kernel + log.timeline.transfer_side())
        };
        let gemm = frac(BenchKind::Gemm);
        let atax = frac(BenchKind::Atax);
        let mvt = frac(BenchKind::Mvt);
        assert!(
            gemm > 1.3 * atax,
            "GEMM ({gemm}) must be more kernel-bound than ATAX ({atax})"
        );
        assert!(gemm > 1.3 * mvt, "GEMM ({gemm}) vs MVT ({mvt})");
    }

    #[test]
    fn mvt_and_bicg_produce_two_outputs() {
        let system = SystemModel::system1();
        for kind in [BenchKind::Mvt, BenchKind::Bicg] {
            let (outs, _) =
                run_app(&PolyApp::tiny(kind), &system, &ScalingSpec::baseline()).unwrap();
            assert_eq!(outs.len(), 2, "{kind}");
        }
    }

    #[test]
    fn corr_diagonal_is_one() {
        let (outs, _) = run_app(
            &PolyApp::tiny(BenchKind::Corr),
            &SystemModel::system1(),
            &ScalingSpec::baseline(),
        )
        .unwrap();
        let m = PolyApp::tiny(BenchKind::Corr).dims().ni;
        let symmat = &outs[0].1;
        for j in 0..m {
            assert_eq!(symmat.get(j * m + j), 1.0, "diag[{j}]");
        }
    }

    #[test]
    fn fdtd_advances_state_each_step() {
        // More time steps means different output: the loop really runs.
        let system = SystemModel::system1();
        let mut d = BenchKind::Fdtd2d.test_dims();
        let a = PolyApp::new(BenchKind::Fdtd2d, d, InputSet::Default, 7);
        d.tmax = 5;
        let b = PolyApp::new(BenchKind::Fdtd2d, d, InputSet::Default, 7);
        let (oa, la) = run_app(&a, &system, &ScalingSpec::baseline()).unwrap();
        let (ob, lb) = run_app(&b, &system, &ScalingSpec::baseline()).unwrap();
        assert_ne!(oa, ob);
        assert!(lb.events.len() > la.events.len());
    }
}
