//! The fourteen Polybench-GPU benchmarks the PreScaler paper evaluates,
//! written against the reproduction's kernel IR and mini OpenCL runtime.
//!
//! * [`spec::BenchKind`] — the catalogue with the paper's Table 4 input
//!   ranges, sizes and Fig. 4 categorization;
//! * [`bench::PolyApp`] — a runnable benchmark instance
//!   (kind × dimensions × input set × seed);
//! * [`input`] — deterministic Default / Image / Random input generation;
//! * [`quality`] — the mean-relative-error quality metric and TOQ gating.
//!
//! # Example
//!
//! ```
//! use prescaler_polybench::{BenchKind, PolyApp};
//! use prescaler_ocl::{run_app, ScalingSpec};
//! use prescaler_sim::SystemModel;
//!
//! let app = PolyApp::tiny(BenchKind::Gemm);
//! let (outputs, profile) = run_app(&app, &SystemModel::system1(), &ScalingSpec::baseline())?;
//! assert_eq!(outputs[0].0, "C");
//! assert_eq!(profile.objects.len(), 3);
//! # Ok::<(), prescaler_ocl::OclError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apps;
pub mod bench;
pub mod input;
pub mod quality;
pub mod spec;

pub use bench::PolyApp;
pub use input::{InputGen, InputSet};
pub use quality::{array_quality, output_quality};
pub use spec::{BenchKind, Dims};
