//! Deterministic input generation for the three input sets of the paper's
//! Table 4: Default (per-benchmark value range), Image (0–255 luminance
//! data standing in for ILSVRC-2012 images), and Random (0–1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The input set an experiment runs with (paper Table 4 / Fig. 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InputSet {
    /// The benchmark's own value range.
    Default,
    /// Image data: 0.0–255.0 luminance with spatial smoothness.
    Image,
    /// Uniform random values in 0.0–1.0.
    Random,
}

impl InputSet {
    /// All three sets, in the paper's order.
    pub const ALL: [InputSet; 3] = [InputSet::Default, InputSet::Image, InputSet::Random];

    /// Display label.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            InputSet::Default => "Default",
            InputSet::Image => "Image",
            InputSet::Random => "Random",
        }
    }
}

/// Generates `len` input values for a benchmark whose Default range is
/// `range`, deterministically from `seed`.
///
/// * `Default` draws uniformly from `range`;
/// * `Image` synthesizes a smooth 0–255 luminance field (the value-range
///   property is what drives the paper's accuracy behaviour);
/// * `Random` draws uniformly from 0–1.
#[must_use]
pub fn generate(set: InputSet, range: (f64, f64), len: usize, seed: u64) -> Vec<f64> {
    match set {
        InputSet::Default => uniform(range, len, seed),
        InputSet::Random => uniform((0.0, 1.0), len, seed),
        InputSet::Image => image(len, seed),
    }
}

fn uniform(range: (f64, f64), len: usize, seed: u64) -> Vec<f64> {
    let (lo, hi) = range;
    assert!(hi >= lo, "invalid range {lo}..{hi}");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(lo..=hi)).collect()
}

/// A synthetic "photograph": smooth low-frequency luminance plus sensor
/// noise, clamped to 0–255. The spatial layout assumes row-major square-ish
/// data, which is how every Polybench array consumes it.
fn image(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let width = (len as f64).sqrt().ceil().max(1.0) as usize;
    // Random low-frequency components.
    let (fx, fy): (f64, f64) = (rng.gen_range(0.005..0.05), rng.gen_range(0.005..0.05));
    let tau = core::f64::consts::TAU;
    let (px, py): (f64, f64) = (rng.gen_range(0.0..tau), rng.gen_range(0.0..tau));
    let base: f64 = rng.gen_range(80.0..160.0);
    let amp: f64 = rng.gen_range(40.0..90.0);
    (0..len)
        .map(|i| {
            let x = (i % width) as f64;
            let y = (i / width) as f64;
            let smooth = base + amp * ((x * fx + px).sin() * (y * fy + py).cos());
            let noise: f64 = rng.gen_range(-6.0..6.0);
            (smooth + noise).clamp(0.0, 255.0)
        })
        .collect()
}

/// A per-benchmark input source: derives a distinct deterministic stream
/// for each named array from `(seed, tag)`.
#[derive(Clone, Debug)]
pub struct InputGen {
    /// Which input set to draw from.
    pub set: InputSet,
    /// The benchmark's Default value range.
    pub range: (f64, f64),
    /// Base seed.
    pub seed: u64,
    /// Multiplicative gain applied to every generated value — models
    /// production input drift. `1.0` is an exact no-op (the multiply is
    /// skipped entirely, so drift-free runs stay bit-identical).
    pub gain: f64,
}

impl InputGen {
    /// Creates a generator (gain `1.0`, i.e. no drift).
    #[must_use]
    pub fn new(set: InputSet, range: (f64, f64), seed: u64) -> InputGen {
        InputGen {
            set,
            range,
            seed,
            gain: 1.0,
        }
    }

    /// A copy with the given drift gain.
    #[must_use]
    pub fn with_gain(mut self, gain: f64) -> InputGen {
        self.gain = gain;
        self
    }

    /// Generates the named input array as host-side doubles.
    #[must_use]
    pub fn array(&self, tag: &str, len: usize) -> prescaler_ir::FloatVec {
        let sub = mix_seed(self.seed, tag);
        let mut values = generate(self.set, self.range, len, sub);
        if self.gain != 1.0 {
            for v in &mut values {
                *v *= self.gain;
            }
        }
        prescaler_ir::FloatVec::from_f64_slice(&values, prescaler_ir::Precision::Double)
    }
}

/// FNV-1a mix of a tag into a seed.
fn mix_seed(seed: u64, tag: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in tag.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_gen_streams_differ_by_tag_and_seed() {
        let g = InputGen::new(InputSet::Default, (0.0, 10.0), 1);
        let a = g.array("A", 16);
        let b = g.array("B", 16);
        assert_ne!(a, b, "different tags draw different data");
        assert_eq!(a, g.array("A", 16), "same tag is reproducible");
        let g2 = InputGen::new(InputSet::Default, (0.0, 10.0), 2);
        assert_ne!(a, g2.array("A", 16), "different seeds differ");
    }

    #[test]
    fn unit_gain_is_bit_identical_and_drift_scales() {
        let g = InputGen::new(InputSet::Random, (0.0, 1.0), 3);
        let plain = g.array("A", 64);
        assert_eq!(plain, g.clone().with_gain(1.0).array("A", 64));
        let drifted = g.clone().with_gain(3.0).array("A", 64).to_f64_vec();
        let base = plain.to_f64_vec();
        for (d, b) in drifted.iter().zip(&base) {
            assert_eq!(*d, b * 3.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(InputSet::Default, (0.0, 100.0), 256, 42);
        let b = generate(InputSet::Default, (0.0, 100.0), 256, 42);
        assert_eq!(a, b);
        let c = generate(InputSet::Default, (0.0, 100.0), 256, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn default_respects_the_range() {
        let xs = generate(InputSet::Default, (-9.01, 2041.0), 10_000, 7);
        assert!(xs.iter().all(|&x| (-9.01..=2041.0).contains(&x)));
        // And actually spans most of it.
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 1500.0);
    }

    #[test]
    fn random_is_unit_range() {
        let xs = generate(InputSet::Random, (0.0, 9999.0), 10_000, 7);
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn image_looks_like_luminance() {
        let xs = generate(InputSet::Image, (0.0, 1.0), 64 * 64, 11);
        assert!(xs.iter().all(|&x| (0.0..=255.0).contains(&x)));
        // Smoothness: neighbouring pixels differ far less than the range.
        let width = 64;
        let mut diffs = 0.0;
        let mut count = 0;
        for i in 0..xs.len() - 1 {
            if (i + 1) % width != 0 {
                diffs += (xs[i + 1] - xs[i]).abs();
                count += 1;
            }
        }
        assert!(diffs / f64::from(count) < 30.0, "mean |Δ| too large");
        // Non-trivial content.
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((20.0..=235.0).contains(&mean));
    }

    #[test]
    fn labels() {
        assert_eq!(InputSet::Default.label(), "Default");
        assert_eq!(InputSet::ALL.len(), 3);
    }
}
