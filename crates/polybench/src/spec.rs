//! The benchmark catalogue: the paper's Table 4.
//!
//! Each entry carries the Default input value range and the paper's input
//! size; [`BenchKind::dims`] derives concrete problem dimensions from a
//! size scale so tests can run tiny instances while experiments run
//! paper-scale ones.

use core::fmt;

/// The fourteen Polybench applications the paper evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BenchKind {
    /// 2-D convolution (3×3 stencil).
    TwoDConv,
    /// Two chained matrix multiplications.
    TwoMM,
    /// 3-D convolution.
    ThreeDConv,
    /// Three chained matrix multiplications.
    ThreeMM,
    /// `y = Aᵀ(Ax)`.
    Atax,
    /// BiCG sub-kernel: `q = Ap`, `s = Aᵀr`.
    Bicg,
    /// Correlation matrix.
    Corr,
    /// Covariance matrix.
    Covar,
    /// 2-D finite-difference time domain.
    Fdtd2d,
    /// `C = αAB + βC`.
    Gemm,
    /// `y = αAx + βBx`.
    Gesummv,
    /// `x1 += Ay1; x2 += Aᵀy2`.
    Mvt,
    /// Symmetric rank-2k update.
    Syr2k,
    /// Symmetric rank-k update.
    Syrk,
}

impl BenchKind {
    /// All benchmarks in the paper's (alphabetical) order.
    pub const ALL: [BenchKind; 14] = [
        BenchKind::TwoDConv,
        BenchKind::TwoMM,
        BenchKind::ThreeDConv,
        BenchKind::ThreeMM,
        BenchKind::Atax,
        BenchKind::Bicg,
        BenchKind::Corr,
        BenchKind::Covar,
        BenchKind::Fdtd2d,
        BenchKind::Gemm,
        BenchKind::Gesummv,
        BenchKind::Mvt,
        BenchKind::Syr2k,
        BenchKind::Syrk,
    ];

    /// The paper's name for the benchmark.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            BenchKind::TwoDConv => "2DCONV",
            BenchKind::TwoMM => "2MM",
            BenchKind::ThreeDConv => "3DCONV",
            BenchKind::ThreeMM => "3MM",
            BenchKind::Atax => "ATAX",
            BenchKind::Bicg => "BICG",
            BenchKind::Corr => "CORR",
            BenchKind::Covar => "COVAR",
            BenchKind::Fdtd2d => "FDTD-2D",
            BenchKind::Gemm => "GEMM",
            BenchKind::Gesummv => "GESUMMV",
            BenchKind::Mvt => "MVT",
            BenchKind::Syr2k => "SYR2K",
            BenchKind::Syrk => "SYRK",
        }
    }

    /// The Default input value range from Table 4.
    #[must_use]
    pub fn default_range(self) -> (f64, f64) {
        match self {
            BenchKind::TwoDConv => (0.0, 1.0),
            BenchKind::TwoMM => (0.0, 2051.0),
            BenchKind::ThreeDConv => (0.0, 59.0),
            BenchKind::ThreeMM => (0.0, 515.0),
            BenchKind::Atax => (0.0, 4094.0),
            BenchKind::Bicg => (0.0, 4096.0 * core::f64::consts::PI),
            BenchKind::Corr => (0.0, 2047.0),
            BenchKind::Covar => (0.0, 2048.0),
            BenchKind::Fdtd2d => (-9.01, 2041.0),
            BenchKind::Gemm => (0.0, 513.0),
            BenchKind::Gesummv => (0.0, 4096.0),
            BenchKind::Mvt => (0.0, 2.0),
            BenchKind::Syr2k => (0.0, 2050.0),
            BenchKind::Syrk => (0.0, 1026.0),
        }
    }

    /// The paper's input size in megabytes (Table 4).
    #[must_use]
    pub const fn paper_input_mb(self) -> f64 {
        match self {
            BenchKind::TwoDConv
            | BenchKind::TwoMM
            | BenchKind::Atax
            | BenchKind::Bicg
            | BenchKind::Gesummv
            | BenchKind::Mvt => 16.0,
            BenchKind::Corr | BenchKind::Covar | BenchKind::Fdtd2d | BenchKind::Syr2k => 4.0,
            BenchKind::ThreeDConv => 16.0,
            BenchKind::ThreeMM | BenchKind::Syrk => 1.0,
            BenchKind::Gemm => 0.25,
        }
    }

    /// Whether the paper's Fig. 4 categorizes the program as
    /// kernel-execution dominated (`true`) or data-transfer dominated.
    #[must_use]
    pub const fn compute_intensive(self) -> bool {
        matches!(
            self,
            BenchKind::TwoMM
                | BenchKind::ThreeMM
                | BenchKind::Corr
                | BenchKind::Covar
                | BenchKind::Fdtd2d
                | BenchKind::Gemm
                | BenchKind::Syr2k
                | BenchKind::Syrk
        )
    }

    /// Concrete dimensions at a given scale (`1.0` ≈ the experiment sizes
    /// used for the figures in this reproduction; smaller values shrink
    /// every axis proportionally, preserving the compute/transfer
    /// character).
    #[must_use]
    pub fn dims(self, scale: f64) -> Dims {
        let s = scale.max(0.01);
        let sq = |base: usize| ((base as f64 * s.sqrt()) as usize).max(4);
        let cube = |base: usize| ((base as f64 * s.cbrt()) as usize).max(4);
        match self {
            // Data-intensive: large 2-D arrays, O(N²) work.
            BenchKind::TwoDConv => Dims::square(sq(1448)),
            BenchKind::Atax => Dims::square(sq(1200)),
            BenchKind::Bicg => Dims::square(sq(1200)),
            BenchKind::Gesummv => Dims::square(sq(1024)),
            BenchKind::Mvt => Dims::square(sq(1200)),
            // 3-D conv: O(N³) data *and* work per element is small.
            BenchKind::ThreeDConv => Dims::cube(cube(128)),
            // Compute-intensive: O(N³) work on O(N²) data.
            BenchKind::Gemm => Dims::square(cube(320)),
            BenchKind::TwoMM => Dims::square(cube(288)),
            BenchKind::ThreeMM => Dims::square(cube(224)),
            BenchKind::Syrk => Dims::square(cube(288)),
            BenchKind::Syr2k => Dims::square(cube(256)),
            BenchKind::Corr => Dims::square(cube(288)),
            BenchKind::Covar => Dims::square(cube(288)),
            // FDTD: O(N²) data, TMAX sweeps.
            BenchKind::Fdtd2d => {
                let n = sq(416);
                Dims {
                    ni: n,
                    nj: n,
                    nk: n,
                    tmax: 24,
                }
            }
        }
    }

    /// Tiny dimensions for unit tests (exact shape, minimal work).
    #[must_use]
    pub fn test_dims(self) -> Dims {
        match self {
            BenchKind::Fdtd2d => Dims {
                ni: 8,
                nj: 8,
                nk: 8,
                tmax: 3,
            },
            BenchKind::ThreeDConv => Dims::cube(6),
            _ => Dims::square(8),
        }
    }
}

impl fmt::Display for BenchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Problem dimensions. Interpretation is per-benchmark: matrix benchmarks
/// use `ni`/`nj`/`nk` as their standard Polybench sizes, FDTD adds the
/// time-step count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dims {
    /// First dimension.
    pub ni: usize,
    /// Second dimension.
    pub nj: usize,
    /// Third dimension (inner/reduction axis where applicable).
    pub nk: usize,
    /// FDTD-2D time steps (ignored elsewhere).
    pub tmax: usize,
}

impl Dims {
    /// Square dims `n × n × n`.
    #[must_use]
    pub fn square(n: usize) -> Dims {
        Dims {
            ni: n,
            nj: n,
            nk: n,
            tmax: 0,
        }
    }

    /// Cubic dims (alias of [`Dims::square`], for 3-D kernels).
    #[must_use]
    pub fn cube(n: usize) -> Dims {
        Dims::square(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_benchmarks_with_unique_names() {
        let mut names: Vec<&str> = BenchKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn table4_ranges_spot_checks() {
        assert_eq!(BenchKind::TwoDConv.default_range(), (0.0, 1.0));
        assert_eq!(BenchKind::Mvt.default_range(), (0.0, 2.0));
        assert_eq!(BenchKind::Fdtd2d.default_range().0, -9.01);
        let (lo, hi) = BenchKind::Bicg.default_range();
        assert_eq!(lo, 0.0);
        assert!((hi - 12867.96).abs() < 0.1);
    }

    #[test]
    fn paper_sizes_match_table4() {
        assert_eq!(BenchKind::Gemm.paper_input_mb(), 0.25);
        assert_eq!(BenchKind::TwoMM.paper_input_mb(), 16.0);
        assert_eq!(BenchKind::Corr.paper_input_mb(), 4.0);
        assert_eq!(BenchKind::Syrk.paper_input_mb(), 1.0);
    }

    #[test]
    fn figure4_categorization() {
        assert!(BenchKind::Gemm.compute_intensive());
        assert!(BenchKind::Corr.compute_intensive());
        assert!(!BenchKind::TwoDConv.compute_intensive());
        assert!(!BenchKind::Mvt.compute_intensive());
        let compute = BenchKind::ALL
            .iter()
            .filter(|k| k.compute_intensive())
            .count();
        assert_eq!(compute, 8);
    }

    #[test]
    fn dims_scale_monotonically() {
        for k in BenchKind::ALL {
            let small = k.dims(0.05);
            let full = k.dims(1.0);
            assert!(small.ni <= full.ni, "{k}");
            assert!(small.ni >= 4);
        }
    }

    #[test]
    fn test_dims_are_tiny() {
        for k in BenchKind::ALL {
            let d = k.test_dims();
            assert!(d.ni <= 8, "{k} test dims must be tiny");
        }
    }
}
