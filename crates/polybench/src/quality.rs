//! Output-quality evaluation.
//!
//! The paper uses mean relative error as its quality metric with a default
//! target output quality (TOQ) of 0.9. Quality is `1 − mean relative
//! error`, with each element's relative error capped at 1 so that NaN and
//! infinity (half-precision range overflow) count as total loss rather
//! than poisoning the mean.

use prescaler_ir::FloatVec;
use prescaler_ocl::Outputs;

/// Relative error of one element, capped at 1.
fn rel_err(reference: f64, test: f64) -> f64 {
    if reference == test {
        return 0.0; // covers the 0 == 0 case exactly
    }
    if !test.is_finite() || !reference.is_finite() {
        return 1.0;
    }
    let denom = reference.abs().max(1e-12);
    ((test - reference).abs() / denom).min(1.0)
}

/// Quality (`1 − mean relative error`) of one array against a reference.
///
/// # Panics
///
/// Panics if lengths differ — outputs of the same program always agree in
/// shape.
#[must_use]
pub fn array_quality(reference: &FloatVec, test: &FloatVec) -> f64 {
    assert_eq!(
        reference.len(),
        test.len(),
        "comparing outputs of different shapes"
    );
    if reference.is_empty() {
        return 1.0;
    }
    let total: f64 = (0..reference.len())
        .map(|i| rel_err(reference.get(i), test.get(i)))
        .sum();
    1.0 - total / reference.len() as f64
}

/// Overall quality of a run: the minimum per-output quality, so a single
/// ruined output array fails the run (matching how TOQ gates a
/// configuration).
///
/// # Panics
///
/// Panics if the two runs produced different output sets.
#[must_use]
pub fn output_quality(reference: &Outputs, test: &Outputs) -> f64 {
    assert_eq!(
        reference.len(),
        test.len(),
        "runs produced different numbers of outputs"
    );
    let mut min_q = 1.0f64;
    for ((rname, rdata), (tname, tdata)) in reference.iter().zip(test) {
        assert_eq!(rname, tname, "output order must be deterministic");
        min_q = min_q.min(array_quality(rdata, tdata));
    }
    min_q
}

#[cfg(test)]
mod tests {
    use super::*;
    use prescaler_ir::Precision;

    fn vecs(r: &[f64], t: &[f64]) -> (FloatVec, FloatVec) {
        (
            FloatVec::from_f64_slice(r, Precision::Double),
            FloatVec::from_f64_slice(t, Precision::Double),
        )
    }

    #[test]
    fn identical_outputs_have_quality_one() {
        let (r, t) = vecs(&[1.0, 2.0, 0.0], &[1.0, 2.0, 0.0]);
        assert_eq!(array_quality(&r, &t), 1.0);
    }

    #[test]
    fn quality_reflects_mean_relative_error() {
        // 10% error on one of two elements → MRE 5% → quality 0.95.
        let (r, t) = vecs(&[10.0, 10.0], &[10.0, 11.0]);
        let q = array_quality(&r, &t);
        assert!((q - 0.95).abs() < 1e-12, "{q}");
    }

    #[test]
    fn infinities_count_as_total_loss() {
        let (r, t) = vecs(&[1.0, 1.0], &[1.0, f64::INFINITY]);
        assert!((array_quality(&r, &t) - 0.5).abs() < 1e-12);
        let (r, t) = vecs(&[1.0], &[f64::NAN]);
        assert_eq!(array_quality(&r, &t), 0.0);
    }

    #[test]
    fn error_is_capped_per_element() {
        // 100x the reference is an error of 1, not 99.
        let (r, t) = vecs(&[1.0, 1.0], &[100.0, 1.0]);
        assert!((array_quality(&r, &t) - 0.5).abs() < 1e-12);
        // Quality never goes below 0.
        let (r, t) = vecs(&[1.0], &[1e9]);
        assert_eq!(array_quality(&r, &t), 0.0);
    }

    #[test]
    fn zero_reference_elements_are_handled() {
        let (r, t) = vecs(&[0.0], &[0.0]);
        assert_eq!(array_quality(&r, &t), 1.0);
        let (r, t) = vecs(&[0.0], &[1.0]);
        assert_eq!(
            array_quality(&r, &t),
            0.0,
            "any deviation from exact 0 caps at 1"
        );
    }

    #[test]
    fn run_quality_is_the_minimum_output_quality() {
        let (r1, t1) = vecs(&[1.0], &[1.0]);
        let (r2, t2) = vecs(&[1.0], &[1.05]);
        let reference = vec![("a".to_owned(), r1), ("b".to_owned(), r2)];
        let test = vec![("a".to_owned(), t1), ("b".to_owned(), t2)];
        let q = output_quality(&reference, &test);
        assert!((q - 0.95).abs() < 1e-12);
    }

    #[test]
    fn empty_arrays_are_perfect() {
        let (r, t) = vecs(&[], &[]);
        assert_eq!(array_quality(&r, &t), 1.0);
    }
}
