//! Per-family benchmark implementations.

pub(crate) mod linalg;
pub(crate) mod stats;
pub(crate) mod stencil;
pub(crate) mod vector;
