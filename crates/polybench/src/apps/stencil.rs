//! Stencil family: 2DCONV, 3DCONV, FDTD-2D.

use crate::apps::linalg::idx2;
use crate::input::InputGen;
use crate::spec::Dims;
use prescaler_ir::dsl::*;
use prescaler_ir::{Access, Expr, Precision, Program};
use prescaler_ocl::{KernelArg, OclError, Outputs, Session};

// ---------------------------------------------------------------------------
// 2DCONV: 3×3 stencil with the standard Polybench coefficients.
// ---------------------------------------------------------------------------

fn a2(i: Expr, j: Expr) -> Expr {
    load("a", idx2(i, j, var("nj")))
}

pub(crate) fn twodconv_program() -> Program {
    let i = || var("i");
    let j = || var("j");
    let one = || int(1);
    let body = flit(0.2) * a2(i() - one(), j() - one())
        + flit(0.5) * a2(i() - one(), j())
        + flit(-0.8) * a2(i() - one(), j() + one())
        + flit(-0.3) * a2(i(), j() - one())
        + flit(0.6) * a2(i(), j())
        + flit(-0.9) * a2(i(), j() + one())
        + flit(0.4) * a2(i() + one(), j() - one())
        + flit(0.7) * a2(i() + one(), j())
        + flit(0.1) * a2(i() + one(), j() + one());
    Program::new("2DCONV").with_kernel(
        kernel("conv2d")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("b", Precision::Double, Access::Write)
            .int_param("ni")
            .int_param("nj")
            .body(vec![
                let_("j", global_id(0)),
                let_("i", global_id(1)),
                if_(
                    gt(var("i"), int(0)),
                    vec![if_(
                        lt(var("i"), var("ni") - int(1)),
                        vec![if_(
                            gt(var("j"), int(0)),
                            vec![if_(
                                lt(var("j"), var("nj") - int(1)),
                                vec![store("b", idx2(var("i"), var("j"), var("nj")), body)],
                            )],
                        )],
                    )],
                ),
            ]),
    )
}

pub(crate) fn twodconv_run(s: &mut Session, d: &Dims, gen: &InputGen) -> Result<Outputs, OclError> {
    let (ni, nj) = (d.ni, d.nj);
    let a = s.create_buffer("A", ni * nj, Precision::Double)?;
    let b = s.create_buffer("B", ni * nj, Precision::Double)?;
    s.enqueue_write(a, &gen.array("A", ni * nj))?;
    s.launch_kernel(
        "conv2d",
        [nj, ni],
        &[
            ("a", KernelArg::Buffer(a)),
            ("b", KernelArg::Buffer(b)),
            ("ni", KernelArg::Int(ni as i64)),
            ("nj", KernelArg::Int(nj as i64)),
        ],
    )?;
    Ok(vec![("B".to_owned(), s.enqueue_read(b)?)])
}

// ---------------------------------------------------------------------------
// 3DCONV: 11-point stencil over a cube, 2-D launch with a depth loop.
// ---------------------------------------------------------------------------

fn a3(i: Expr, j: Expr, k: Expr) -> Expr {
    load("a", (i * var("nj") + j) * var("nk") + k)
}

pub(crate) fn threedconv_program() -> Program {
    let i = || var("i");
    let j = || var("j");
    let k = || var("k");
    let one = || int(1);
    let body = flit(2.0) * a3(i() - one(), j() - one(), k() - one())
        + flit(0.5) * a3(i(), j() - one(), k() - one())
        + flit(-0.8) * a3(i() + one(), j() - one(), k() - one())
        + flit(-0.3) * a3(i() - one(), j(), k())
        + flit(0.6) * a3(i(), j(), k())
        + flit(-0.9) * a3(i() + one(), j(), k())
        + flit(0.4) * a3(i() - one(), j() + one(), k() + one())
        + flit(0.7) * a3(i(), j() + one(), k() + one())
        + flit(0.1) * a3(i() + one(), j() + one(), k() + one())
        + flit(-0.2) * a3(i(), j(), k() - one())
        + flit(0.3) * a3(i(), j(), k() + one());
    Program::new("3DCONV").with_kernel(
        kernel("conv3d")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("b", Precision::Double, Access::Write)
            .int_param("ni")
            .int_param("nj")
            .int_param("nk")
            .body(vec![
                let_("k", global_id(0)),
                let_("j", global_id(1)),
                if_(
                    gt(var("j"), int(0)),
                    vec![if_(
                        lt(var("j"), var("nj") - int(1)),
                        vec![if_(
                            gt(var("k"), int(0)),
                            vec![if_(
                                lt(var("k"), var("nk") - int(1)),
                                vec![for_(
                                    "i",
                                    int(1),
                                    var("ni") - int(1),
                                    vec![store(
                                        "b",
                                        (var("i") * var("nj") + var("j")) * var("nk") + var("k"),
                                        body,
                                    )],
                                )],
                            )],
                        )],
                    )],
                ),
            ]),
    )
}

pub(crate) fn threedconv_run(
    s: &mut Session,
    d: &Dims,
    gen: &InputGen,
) -> Result<Outputs, OclError> {
    let (ni, nj, nk) = (d.ni, d.nj, d.nk);
    let len = ni * nj * nk;
    let a = s.create_buffer("A", len, Precision::Double)?;
    let b = s.create_buffer("B", len, Precision::Double)?;
    s.enqueue_write(a, &gen.array("A", len))?;
    s.launch_kernel(
        "conv3d",
        [nk, nj],
        &[
            ("a", KernelArg::Buffer(a)),
            ("b", KernelArg::Buffer(b)),
            ("ni", KernelArg::Int(ni as i64)),
            ("nj", KernelArg::Int(nj as i64)),
            ("nk", KernelArg::Int(nk as i64)),
        ],
    )?;
    Ok(vec![("B".to_owned(), s.enqueue_read(b)?)])
}

// ---------------------------------------------------------------------------
// FDTD-2D: ey/ex/hz updates over TMAX time steps.
//
// Shapes: ex is ni×(nj+1), ey is (ni+1)×nj, hz is ni×nj, fict is tmax.
// ---------------------------------------------------------------------------

pub(crate) fn fdtd2d_program() -> Program {
    let ey_kernel = kernel("fdtd_ey")
        .buffer("fict", Precision::Double, Access::Read)
        .buffer("ey", Precision::Double, Access::ReadWrite)
        .buffer("hz", Precision::Double, Access::Read)
        .int_param("ni")
        .int_param("nj")
        .int_param("t")
        .body(vec![
            let_("j", global_id(0)),
            let_("i", global_id(1)),
            if_(
                lt(var("j"), var("nj")),
                vec![if_else(
                    cmp(prescaler_ir::CmpOp::Eq, var("i"), int(0)),
                    vec![store("ey", var("j"), load("fict", var("t")))],
                    vec![if_(
                        lt(var("i"), var("ni")),
                        vec![store(
                            "ey",
                            idx2(var("i"), var("j"), var("nj")),
                            load("ey", idx2(var("i"), var("j"), var("nj")))
                                - flit(0.5)
                                    * (load("hz", idx2(var("i"), var("j"), var("nj")))
                                        - load("hz", idx2(var("i") - int(1), var("j"), var("nj")))),
                        )],
                    )],
                )],
            ),
        ]);

    let ex_kernel = kernel("fdtd_ex")
        .buffer("ex", Precision::Double, Access::ReadWrite)
        .buffer("hz", Precision::Double, Access::Read)
        .int_param("ni")
        .int_param("nj")
        .body(vec![
            let_("j", global_id(0)),
            let_("i", global_id(1)),
            if_(
                lt(var("i"), var("ni")),
                vec![if_(
                    gt(var("j"), int(0)),
                    vec![if_(
                        lt(var("j"), var("nj")),
                        vec![store(
                            "ex",
                            idx2(var("i"), var("j"), var("nj") + int(1)),
                            load("ex", idx2(var("i"), var("j"), var("nj") + int(1)))
                                - flit(0.5)
                                    * (load("hz", idx2(var("i"), var("j"), var("nj")))
                                        - load("hz", idx2(var("i"), var("j") - int(1), var("nj")))),
                        )],
                    )],
                )],
            ),
        ]);

    let hz_kernel = kernel("fdtd_hz")
        .buffer("ex", Precision::Double, Access::Read)
        .buffer("ey", Precision::Double, Access::Read)
        .buffer("hz", Precision::Double, Access::ReadWrite)
        .int_param("ni")
        .int_param("nj")
        .body(vec![
            let_("j", global_id(0)),
            let_("i", global_id(1)),
            if_(
                lt(var("i"), var("ni")),
                vec![if_(
                    lt(var("j"), var("nj")),
                    vec![store(
                        "hz",
                        idx2(var("i"), var("j"), var("nj")),
                        load("hz", idx2(var("i"), var("j"), var("nj")))
                            - flit(0.7)
                                * (load(
                                    "ex",
                                    idx2(var("i"), var("j") + int(1), var("nj") + int(1)),
                                ) - load("ex", idx2(var("i"), var("j"), var("nj") + int(1)))
                                    + load("ey", idx2(var("i") + int(1), var("j"), var("nj")))
                                    - load("ey", idx2(var("i"), var("j"), var("nj")))),
                    )],
                )],
            ),
        ]);

    Program::new("FDTD-2D")
        .with_kernel(ey_kernel)
        .with_kernel(ex_kernel)
        .with_kernel(hz_kernel)
}

pub(crate) fn fdtd2d_run(s: &mut Session, d: &Dims, gen: &InputGen) -> Result<Outputs, OclError> {
    let (ni, nj, tmax) = (d.ni, d.nj, d.tmax.max(1));
    let fict = s.create_buffer("FICT", tmax, Precision::Double)?;
    let ex = s.create_buffer("EX", ni * (nj + 1), Precision::Double)?;
    let ey = s.create_buffer("EY", (ni + 1) * nj, Precision::Double)?;
    let hz = s.create_buffer("HZ", ni * nj, Precision::Double)?;
    s.enqueue_write(fict, &gen.array("FICT", tmax))?;
    s.enqueue_write(ex, &gen.array("EX", ni * (nj + 1)))?;
    s.enqueue_write(ey, &gen.array("EY", (ni + 1) * nj))?;
    s.enqueue_write(hz, &gen.array("HZ", ni * nj))?;
    for t in 0..tmax {
        s.launch_kernel(
            "fdtd_ey",
            [nj, ni],
            &[
                ("fict", KernelArg::Buffer(fict)),
                ("ey", KernelArg::Buffer(ey)),
                ("hz", KernelArg::Buffer(hz)),
                ("ni", KernelArg::Int(ni as i64)),
                ("nj", KernelArg::Int(nj as i64)),
                ("t", KernelArg::Int(t as i64)),
            ],
        )?;
        s.launch_kernel(
            "fdtd_ex",
            [nj + 1, ni],
            &[
                ("ex", KernelArg::Buffer(ex)),
                ("hz", KernelArg::Buffer(hz)),
                ("ni", KernelArg::Int(ni as i64)),
                ("nj", KernelArg::Int(nj as i64)),
            ],
        )?;
        s.launch_kernel(
            "fdtd_hz",
            [nj, ni],
            &[
                ("ex", KernelArg::Buffer(ex)),
                ("ey", KernelArg::Buffer(ey)),
                ("hz", KernelArg::Buffer(hz)),
                ("ni", KernelArg::Int(ni as i64)),
                ("nj", KernelArg::Int(nj as i64)),
            ],
        )?;
    }
    Ok(vec![("HZ".to_owned(), s.enqueue_read(hz)?)])
}
