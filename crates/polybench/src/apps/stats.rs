//! Statistics family: CORR (correlation matrix) and COVAR (covariance
//! matrix) — compute-intensive with triangular kernels.

use crate::apps::linalg::idx2;
use crate::input::InputGen;
use crate::spec::Dims;
use prescaler_ir::dsl::*;
use prescaler_ir::{Access, Precision, Program};
use prescaler_ocl::{KernelArg, OclError, Outputs, Session};

/// Column-mean kernel: `mean[j] = Σ_i data[i][j] / float_n`.
fn mean_kernel(name: &str) -> prescaler_ir::Kernel {
    kernel(name)
        .buffer("data", Precision::Double, Access::Read)
        .buffer("mean", Precision::Double, Access::Write)
        .float_param_like("float_n", "mean")
        .int_param("m")
        .int_param("n")
        .body(vec![
            let_("j", global_id(0)),
            if_(
                lt(var("j"), var("m")),
                vec![
                    let_acc("acc", "mean", flit(0.0)),
                    for_(
                        "i",
                        int(0),
                        var("n"),
                        vec![add_assign(
                            "acc",
                            load("data", idx2(var("i"), var("j"), var("m"))),
                        )],
                    ),
                    store("mean", var("j"), var("acc") / var("float_n")),
                ],
            ),
        ])
}

// ---------------------------------------------------------------------------
// CORR
// ---------------------------------------------------------------------------

pub(crate) fn corr_program() -> Program {
    let std_kernel = kernel("corr_std")
        .buffer("data", Precision::Double, Access::Read)
        .buffer("mean", Precision::Double, Access::Read)
        .buffer("stddev", Precision::Double, Access::Write)
        .float_param_like("float_n", "stddev")
        .float_param_like("eps", "stddev")
        .int_param("m")
        .int_param("n")
        .body(vec![
            let_("j", global_id(0)),
            if_(
                lt(var("j"), var("m")),
                vec![
                    let_acc("acc", "stddev", flit(0.0)),
                    for_(
                        "i",
                        int(0),
                        var("n"),
                        vec![
                            let_acc(
                                "dv",
                                "stddev",
                                load("data", idx2(var("i"), var("j"), var("m")))
                                    - load("mean", var("j")),
                            ),
                            add_assign("acc", var("dv") * var("dv")),
                        ],
                    ),
                    let_acc("sd", "stddev", sqrt(var("acc") / var("float_n"))),
                    store(
                        "stddev",
                        var("j"),
                        select(le(var("sd"), var("eps")), flit(1.0), var("sd")),
                    ),
                ],
            ),
        ]);

    let reduce_kernel = kernel("corr_reduce")
        .buffer("data", Precision::Double, Access::ReadWrite)
        .buffer("mean", Precision::Double, Access::Read)
        .buffer("stddev", Precision::Double, Access::Read)
        .float_param_like("float_n", "data")
        .int_param("m")
        .int_param("n")
        .body(vec![
            let_("j", global_id(0)),
            let_("i", global_id(1)),
            if_(
                lt(var("i"), var("n")),
                vec![if_(
                    lt(var("j"), var("m")),
                    vec![store(
                        "data",
                        idx2(var("i"), var("j"), var("m")),
                        (load("data", idx2(var("i"), var("j"), var("m"))) - load("mean", var("j")))
                            / (sqrt(var("float_n")) * load("stddev", var("j"))),
                    )],
                )],
            ),
        ]);

    let compute_kernel = kernel("corr_compute")
        .buffer("data", Precision::Double, Access::Read)
        .buffer("symmat", Precision::Double, Access::Write)
        .int_param("m")
        .int_param("n")
        .body(vec![
            let_("j1", global_id(0)),
            if_else(
                lt(var("j1"), var("m") - int(1)),
                vec![
                    store("symmat", idx2(var("j1"), var("j1"), var("m")), flit(1.0)),
                    for_(
                        "j2",
                        var("j1") + int(1),
                        var("m"),
                        vec![
                            let_acc("acc", "symmat", flit(0.0)),
                            for_(
                                "i",
                                int(0),
                                var("n"),
                                vec![add_assign(
                                    "acc",
                                    load("data", idx2(var("i"), var("j1"), var("m")))
                                        * load("data", idx2(var("i"), var("j2"), var("m"))),
                                )],
                            ),
                            store("symmat", idx2(var("j1"), var("j2"), var("m")), var("acc")),
                            store("symmat", idx2(var("j2"), var("j1"), var("m")), var("acc")),
                        ],
                    ),
                ],
                vec![if_(
                    cmp(prescaler_ir::CmpOp::Eq, var("j1"), var("m") - int(1)),
                    vec![store(
                        "symmat",
                        idx2(var("j1"), var("j1"), var("m")),
                        flit(1.0),
                    )],
                )],
            ),
        ]);

    Program::new("CORR")
        .with_kernel(mean_kernel("corr_mean"))
        .with_kernel(std_kernel)
        .with_kernel(reduce_kernel)
        .with_kernel(compute_kernel)
}

pub(crate) fn corr_run(s: &mut Session, d: &Dims, gen: &InputGen) -> Result<Outputs, OclError> {
    let (m, n) = (d.ni, d.nj);
    let data = s.create_buffer("DATA", n * m, Precision::Double)?;
    let mean = s.create_buffer("MEAN", m, Precision::Double)?;
    let stddev = s.create_buffer("STD", m, Precision::Double)?;
    let symmat = s.create_buffer("SYMMAT", m * m, Precision::Double)?;
    s.enqueue_write(data, &gen.array("DATA", n * m))?;
    let float_n = KernelArg::Float(n as f64);
    let mm = KernelArg::Int(m as i64);
    let nn = KernelArg::Int(n as i64);
    s.launch_kernel(
        "corr_mean",
        [m, 1],
        &[
            ("data", KernelArg::Buffer(data)),
            ("mean", KernelArg::Buffer(mean)),
            ("float_n", float_n.clone()),
            ("m", mm.clone()),
            ("n", nn.clone()),
        ],
    )?;
    s.launch_kernel(
        "corr_std",
        [m, 1],
        &[
            ("data", KernelArg::Buffer(data)),
            ("mean", KernelArg::Buffer(mean)),
            ("stddev", KernelArg::Buffer(stddev)),
            ("float_n", float_n.clone()),
            ("eps", KernelArg::Float(0.1)),
            ("m", mm.clone()),
            ("n", nn.clone()),
        ],
    )?;
    s.launch_kernel(
        "corr_reduce",
        [m, n],
        &[
            ("data", KernelArg::Buffer(data)),
            ("mean", KernelArg::Buffer(mean)),
            ("stddev", KernelArg::Buffer(stddev)),
            ("float_n", float_n),
            ("m", mm.clone()),
            ("n", nn.clone()),
        ],
    )?;
    s.launch_kernel(
        "corr_compute",
        [m, 1],
        &[
            ("data", KernelArg::Buffer(data)),
            ("symmat", KernelArg::Buffer(symmat)),
            ("m", mm),
            ("n", nn),
        ],
    )?;
    Ok(vec![("SYMMAT".to_owned(), s.enqueue_read(symmat)?)])
}

// ---------------------------------------------------------------------------
// COVAR
// ---------------------------------------------------------------------------

pub(crate) fn covar_program() -> Program {
    let reduce_kernel = kernel("covar_reduce")
        .buffer("data", Precision::Double, Access::ReadWrite)
        .buffer("mean", Precision::Double, Access::Read)
        .int_param("m")
        .int_param("n")
        .body(vec![
            let_("j", global_id(0)),
            let_("i", global_id(1)),
            if_(
                lt(var("i"), var("n")),
                vec![if_(
                    lt(var("j"), var("m")),
                    vec![store(
                        "data",
                        idx2(var("i"), var("j"), var("m")),
                        load("data", idx2(var("i"), var("j"), var("m"))) - load("mean", var("j")),
                    )],
                )],
            ),
        ]);

    let compute_kernel = kernel("covar_compute")
        .buffer("data", Precision::Double, Access::Read)
        .buffer("symmat", Precision::Double, Access::Write)
        .int_param("m")
        .int_param("n")
        .body(vec![
            let_("j1", global_id(0)),
            if_(
                lt(var("j1"), var("m")),
                vec![for_(
                    "j2",
                    var("j1"),
                    var("m"),
                    vec![
                        let_acc("acc", "symmat", flit(0.0)),
                        for_(
                            "i",
                            int(0),
                            var("n"),
                            vec![add_assign(
                                "acc",
                                load("data", idx2(var("i"), var("j1"), var("m")))
                                    * load("data", idx2(var("i"), var("j2"), var("m"))),
                            )],
                        ),
                        store("symmat", idx2(var("j1"), var("j2"), var("m")), var("acc")),
                        store("symmat", idx2(var("j2"), var("j1"), var("m")), var("acc")),
                    ],
                )],
            ),
        ]);

    Program::new("COVAR")
        .with_kernel(mean_kernel("covar_mean"))
        .with_kernel(reduce_kernel)
        .with_kernel(compute_kernel)
}

pub(crate) fn covar_run(s: &mut Session, d: &Dims, gen: &InputGen) -> Result<Outputs, OclError> {
    let (m, n) = (d.ni, d.nj);
    let data = s.create_buffer("DATA", n * m, Precision::Double)?;
    let mean = s.create_buffer("MEAN", m, Precision::Double)?;
    let symmat = s.create_buffer("SYMMAT", m * m, Precision::Double)?;
    s.enqueue_write(data, &gen.array("DATA", n * m))?;
    let mm = KernelArg::Int(m as i64);
    let nn = KernelArg::Int(n as i64);
    s.launch_kernel(
        "covar_mean",
        [m, 1],
        &[
            ("data", KernelArg::Buffer(data)),
            ("mean", KernelArg::Buffer(mean)),
            ("float_n", KernelArg::Float(n as f64)),
            ("m", mm.clone()),
            ("n", nn.clone()),
        ],
    )?;
    s.launch_kernel(
        "covar_reduce",
        [m, n],
        &[
            ("data", KernelArg::Buffer(data)),
            ("mean", KernelArg::Buffer(mean)),
            ("m", mm.clone()),
            ("n", nn.clone()),
        ],
    )?;
    s.launch_kernel(
        "covar_compute",
        [m, 1],
        &[
            ("data", KernelArg::Buffer(data)),
            ("symmat", KernelArg::Buffer(symmat)),
            ("m", mm),
            ("n", nn),
        ],
    )?;
    Ok(vec![("SYMMAT".to_owned(), s.enqueue_read(symmat)?)])
}
