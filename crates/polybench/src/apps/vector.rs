//! Matrix-vector family: ATAX, BICG, MVT, GESUMMV — the data-intensive
//! half of the suite (O(N²) data, O(N²) work).

use crate::apps::linalg::idx2;
use crate::input::InputGen;
use crate::spec::Dims;
use prescaler_ir::dsl::*;
use prescaler_ir::{Access, Kernel, Precision, Program};
use prescaler_ocl::{KernelArg, OclError, Outputs, Session};

/// A row-wise matrix-vector kernel: `out[i] = Σ_j mat[i][j] * vec[j]`
/// (or the transposed access when `transposed`).
fn matvec_kernel(name: &str, mat: &str, vin: &str, vout: &str, transposed: bool) -> Kernel {
    let load_elem = if transposed {
        load(mat, idx2(var("j"), var("i"), var("n")))
    } else {
        load(mat, idx2(var("i"), var("j"), var("n")))
    };
    kernel(name)
        .buffer(mat, Precision::Double, Access::Read)
        .buffer(vin, Precision::Double, Access::Read)
        .buffer(vout, Precision::Double, Access::Write)
        .int_param("n")
        .body(vec![
            let_("i", global_id(0)),
            if_(
                lt(var("i"), var("n")),
                vec![
                    let_acc("acc", vout, flit(0.0)),
                    for_(
                        "j",
                        int(0),
                        var("n"),
                        vec![add_assign("acc", load_elem * load(vin, var("j")))],
                    ),
                    store(vout, var("i"), var("acc")),
                ],
            ),
        ])
}

// ---------------------------------------------------------------------------
// ATAX: y = Aᵀ(Ax)
// ---------------------------------------------------------------------------

pub(crate) fn atax_program() -> Program {
    Program::new("ATAX")
        .with_kernel(matvec_kernel("atax_k1", "a", "x", "tmp", false))
        .with_kernel(matvec_kernel("atax_k2", "a", "tmp", "y", true))
}

pub(crate) fn atax_run(s: &mut Session, d: &Dims, gen: &InputGen) -> Result<Outputs, OclError> {
    let n = d.ni;
    let a = s.create_buffer("A", n * n, Precision::Double)?;
    let x = s.create_buffer("X", n, Precision::Double)?;
    let tmp = s.create_buffer("TMP", n, Precision::Double)?;
    let y = s.create_buffer("Y", n, Precision::Double)?;
    s.enqueue_write(a, &gen.array("A", n * n))?;
    s.enqueue_write(x, &gen.array("X", n))?;
    let nn = KernelArg::Int(n as i64);
    s.launch_kernel(
        "atax_k1",
        [n, 1],
        &[
            ("a", KernelArg::Buffer(a)),
            ("x", KernelArg::Buffer(x)),
            ("tmp", KernelArg::Buffer(tmp)),
            ("n", nn.clone()),
        ],
    )?;
    s.launch_kernel(
        "atax_k2",
        [n, 1],
        &[
            ("a", KernelArg::Buffer(a)),
            ("tmp", KernelArg::Buffer(tmp)),
            ("y", KernelArg::Buffer(y)),
            ("n", nn),
        ],
    )?;
    Ok(vec![("Y".to_owned(), s.enqueue_read(y)?)])
}

// ---------------------------------------------------------------------------
// BICG: q = A p, s = Aᵀ r
// ---------------------------------------------------------------------------

pub(crate) fn bicg_program() -> Program {
    Program::new("BICG")
        .with_kernel(matvec_kernel("bicg_k1", "a", "p", "q", false))
        .with_kernel(matvec_kernel("bicg_k2", "a", "r", "s", true))
}

pub(crate) fn bicg_run(s: &mut Session, d: &Dims, gen: &InputGen) -> Result<Outputs, OclError> {
    let n = d.ni;
    let a = s.create_buffer("A", n * n, Precision::Double)?;
    let p = s.create_buffer("P", n, Precision::Double)?;
    let r = s.create_buffer("R", n, Precision::Double)?;
    let q = s.create_buffer("Q", n, Precision::Double)?;
    let sv = s.create_buffer("S", n, Precision::Double)?;
    s.enqueue_write(a, &gen.array("A", n * n))?;
    s.enqueue_write(p, &gen.array("P", n))?;
    s.enqueue_write(r, &gen.array("R", n))?;
    let nn = KernelArg::Int(n as i64);
    s.launch_kernel(
        "bicg_k1",
        [n, 1],
        &[
            ("a", KernelArg::Buffer(a)),
            ("p", KernelArg::Buffer(p)),
            ("q", KernelArg::Buffer(q)),
            ("n", nn.clone()),
        ],
    )?;
    s.launch_kernel(
        "bicg_k2",
        [n, 1],
        &[
            ("a", KernelArg::Buffer(a)),
            ("r", KernelArg::Buffer(r)),
            ("s", KernelArg::Buffer(sv)),
            ("n", nn),
        ],
    )?;
    Ok(vec![
        ("Q".to_owned(), s.enqueue_read(q)?),
        ("S".to_owned(), s.enqueue_read(sv)?),
    ])
}

// ---------------------------------------------------------------------------
// MVT: x1 += A y1, x2 += Aᵀ y2
// ---------------------------------------------------------------------------

fn mvt_kernel(name: &str, xv: &str, yv: &str, transposed: bool) -> Kernel {
    let load_elem = if transposed {
        load("a", idx2(var("j"), var("i"), var("n")))
    } else {
        load("a", idx2(var("i"), var("j"), var("n")))
    };
    kernel(name)
        .buffer("a", Precision::Double, Access::Read)
        .buffer(xv, Precision::Double, Access::ReadWrite)
        .buffer(yv, Precision::Double, Access::Read)
        .int_param("n")
        .body(vec![
            let_("i", global_id(0)),
            if_(
                lt(var("i"), var("n")),
                vec![
                    let_acc("acc", xv, load(xv, var("i"))),
                    for_(
                        "j",
                        int(0),
                        var("n"),
                        vec![add_assign("acc", load_elem * load(yv, var("j")))],
                    ),
                    store(xv, var("i"), var("acc")),
                ],
            ),
        ])
}

pub(crate) fn mvt_program() -> Program {
    Program::new("MVT")
        .with_kernel(mvt_kernel("mvt_k1", "x1", "y1", false))
        .with_kernel(mvt_kernel("mvt_k2", "x2", "y2", true))
}

pub(crate) fn mvt_run(s: &mut Session, d: &Dims, gen: &InputGen) -> Result<Outputs, OclError> {
    let n = d.ni;
    let a = s.create_buffer("A", n * n, Precision::Double)?;
    let x1 = s.create_buffer("X1", n, Precision::Double)?;
    let x2 = s.create_buffer("X2", n, Precision::Double)?;
    let y1 = s.create_buffer("Y1", n, Precision::Double)?;
    let y2 = s.create_buffer("Y2", n, Precision::Double)?;
    s.enqueue_write(a, &gen.array("A", n * n))?;
    s.enqueue_write(x1, &gen.array("X1", n))?;
    s.enqueue_write(x2, &gen.array("X2", n))?;
    s.enqueue_write(y1, &gen.array("Y1", n))?;
    s.enqueue_write(y2, &gen.array("Y2", n))?;
    let nn = KernelArg::Int(n as i64);
    s.launch_kernel(
        "mvt_k1",
        [n, 1],
        &[
            ("a", KernelArg::Buffer(a)),
            ("x1", KernelArg::Buffer(x1)),
            ("y1", KernelArg::Buffer(y1)),
            ("n", nn.clone()),
        ],
    )?;
    s.launch_kernel(
        "mvt_k2",
        [n, 1],
        &[
            ("a", KernelArg::Buffer(a)),
            ("x2", KernelArg::Buffer(x2)),
            ("y2", KernelArg::Buffer(y2)),
            ("n", nn),
        ],
    )?;
    Ok(vec![
        ("X1".to_owned(), s.enqueue_read(x1)?),
        ("X2".to_owned(), s.enqueue_read(x2)?),
    ])
}

// ---------------------------------------------------------------------------
// GESUMMV: y = α·A·x + β·B·x
// ---------------------------------------------------------------------------

pub(crate) fn gesummv_program() -> Program {
    Program::new("GESUMMV").with_kernel(
        kernel("gesummv")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("b", Precision::Double, Access::Read)
            .buffer("x", Precision::Double, Access::Read)
            .buffer("y", Precision::Double, Access::Write)
            .buffer("tmp", Precision::Double, Access::Write)
            .float_param_like("alpha", "y")
            .float_param_like("beta", "y")
            .int_param("n")
            .body(vec![
                let_("i", global_id(0)),
                if_(
                    lt(var("i"), var("n")),
                    vec![
                        let_acc("t", "tmp", flit(0.0)),
                        let_acc("u", "y", flit(0.0)),
                        for_(
                            "j",
                            int(0),
                            var("n"),
                            vec![
                                add_assign(
                                    "t",
                                    load("a", idx2(var("i"), var("j"), var("n")))
                                        * load("x", var("j")),
                                ),
                                add_assign(
                                    "u",
                                    load("b", idx2(var("i"), var("j"), var("n")))
                                        * load("x", var("j")),
                                ),
                            ],
                        ),
                        store("tmp", var("i"), var("t")),
                        store(
                            "y",
                            var("i"),
                            var("alpha") * var("t") + var("beta") * var("u"),
                        ),
                    ],
                ),
            ]),
    )
}

pub(crate) fn gesummv_run(s: &mut Session, d: &Dims, gen: &InputGen) -> Result<Outputs, OclError> {
    let n = d.ni;
    let a = s.create_buffer("A", n * n, Precision::Double)?;
    let b = s.create_buffer("B", n * n, Precision::Double)?;
    let x = s.create_buffer("X", n, Precision::Double)?;
    let y = s.create_buffer("Y", n, Precision::Double)?;
    let tmp = s.create_buffer("TMP", n, Precision::Double)?;
    s.enqueue_write(a, &gen.array("A", n * n))?;
    s.enqueue_write(b, &gen.array("B", n * n))?;
    s.enqueue_write(x, &gen.array("X", n))?;
    s.launch_kernel(
        "gesummv",
        [n, 1],
        &[
            ("a", KernelArg::Buffer(a)),
            ("b", KernelArg::Buffer(b)),
            ("x", KernelArg::Buffer(x)),
            ("y", KernelArg::Buffer(y)),
            ("tmp", KernelArg::Buffer(tmp)),
            ("alpha", KernelArg::Float(1.5)),
            ("beta", KernelArg::Float(1.2)),
            ("n", KernelArg::Int(n as i64)),
        ],
    )?;
    Ok(vec![("Y".to_owned(), s.enqueue_read(y)?)])
}
