//! Matrix-multiplication family: GEMM, 2MM, 3MM, SYRK, SYR2K.

use crate::input::InputGen;
use crate::spec::Dims;
use prescaler_ir::dsl::*;
use prescaler_ir::{Access, Expr, Precision, Program};
use prescaler_ocl::{KernelArg, OclError, Outputs, Session};

/// `i * w + j` as an index expression.
pub(crate) fn idx2(i: Expr, j: Expr, w: Expr) -> Expr {
    i * w + j
}

/// A plain `c = a × b` matmul kernel over square `n×n` matrices, with the
/// standard launch guards.
pub(crate) fn matmul_kernel(name: &str, a: &str, b: &str, c: &str) -> prescaler_ir::Kernel {
    kernel(name)
        .buffer(a, Precision::Double, Access::Read)
        .buffer(b, Precision::Double, Access::Read)
        .buffer(c, Precision::Double, Access::Write)
        .int_param("n")
        .body(vec![
            let_("j", global_id(0)),
            let_("i", global_id(1)),
            if_(
                lt(var("i"), var("n")),
                vec![if_(
                    lt(var("j"), var("n")),
                    vec![
                        let_acc("acc", c, flit(0.0)),
                        for_(
                            "k",
                            int(0),
                            var("n"),
                            vec![add_assign(
                                "acc",
                                load(a, idx2(var("i"), var("k"), var("n")))
                                    * load(b, idx2(var("k"), var("j"), var("n"))),
                            )],
                        ),
                        store(c, idx2(var("i"), var("j"), var("n")), var("acc")),
                    ],
                )],
            ),
        ])
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

pub(crate) fn gemm_program() -> Program {
    Program::new("GEMM").with_kernel(
        kernel("gemm")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("b", Precision::Double, Access::Read)
            .buffer("c", Precision::Double, Access::ReadWrite)
            .float_param_like("alpha", "c")
            .float_param_like("beta", "c")
            .int_param("ni")
            .int_param("nj")
            .int_param("nk")
            .body(vec![
                let_("j", global_id(0)),
                let_("i", global_id(1)),
                if_(
                    lt(var("i"), var("ni")),
                    vec![if_(
                        lt(var("j"), var("nj")),
                        vec![
                            let_acc("acc", "c", flit(0.0)),
                            for_(
                                "k",
                                int(0),
                                var("nk"),
                                vec![add_assign(
                                    "acc",
                                    load("a", idx2(var("i"), var("k"), var("nk")))
                                        * load("b", idx2(var("k"), var("j"), var("nj"))),
                                )],
                            ),
                            store(
                                "c",
                                idx2(var("i"), var("j"), var("nj")),
                                var("alpha") * var("acc")
                                    + var("beta") * load("c", idx2(var("i"), var("j"), var("nj"))),
                            ),
                        ],
                    )],
                ),
            ]),
    )
}

pub(crate) fn gemm_run(s: &mut Session, d: &Dims, gen: &InputGen) -> Result<Outputs, OclError> {
    let (ni, nj, nk) = (d.ni, d.nj, d.nk);
    let a = s.create_buffer("A", ni * nk, Precision::Double)?;
    let b = s.create_buffer("B", nk * nj, Precision::Double)?;
    let c = s.create_buffer("C", ni * nj, Precision::Double)?;
    s.enqueue_write(a, &gen.array("A", ni * nk))?;
    s.enqueue_write(b, &gen.array("B", nk * nj))?;
    s.enqueue_write(c, &gen.array("C", ni * nj))?;
    s.launch_kernel(
        "gemm",
        [nj, ni],
        &[
            ("a", KernelArg::Buffer(a)),
            ("b", KernelArg::Buffer(b)),
            ("c", KernelArg::Buffer(c)),
            ("alpha", KernelArg::Float(1.5)),
            ("beta", KernelArg::Float(1.2)),
            ("ni", KernelArg::Int(ni as i64)),
            ("nj", KernelArg::Int(nj as i64)),
            ("nk", KernelArg::Int(nk as i64)),
        ],
    )?;
    Ok(vec![("C".to_owned(), s.enqueue_read(c)?)])
}

// ---------------------------------------------------------------------------
// 2MM: C = A×B, E = C×D
// ---------------------------------------------------------------------------

pub(crate) fn twomm_program() -> Program {
    Program::new("2MM")
        .with_kernel(matmul_kernel("mm2_k1", "a", "b", "c"))
        .with_kernel(matmul_kernel("mm2_k2", "c", "d", "e"))
}

pub(crate) fn twomm_run(s: &mut Session, d: &Dims, gen: &InputGen) -> Result<Outputs, OclError> {
    let n = d.ni;
    let a = s.create_buffer("A", n * n, Precision::Double)?;
    let b = s.create_buffer("B", n * n, Precision::Double)?;
    let c = s.create_buffer("C", n * n, Precision::Double)?;
    let dd = s.create_buffer("D", n * n, Precision::Double)?;
    let e = s.create_buffer("E", n * n, Precision::Double)?;
    s.enqueue_write(a, &gen.array("A", n * n))?;
    s.enqueue_write(b, &gen.array("B", n * n))?;
    s.enqueue_write(dd, &gen.array("D", n * n))?;
    let nn = KernelArg::Int(n as i64);
    s.launch_kernel(
        "mm2_k1",
        [n, n],
        &[
            ("a", KernelArg::Buffer(a)),
            ("b", KernelArg::Buffer(b)),
            ("c", KernelArg::Buffer(c)),
            ("n", nn.clone()),
        ],
    )?;
    s.launch_kernel(
        "mm2_k2",
        [n, n],
        &[
            ("c", KernelArg::Buffer(c)),
            ("d", KernelArg::Buffer(dd)),
            ("e", KernelArg::Buffer(e)),
            ("n", nn),
        ],
    )?;
    Ok(vec![("E".to_owned(), s.enqueue_read(e)?)])
}

// ---------------------------------------------------------------------------
// 3MM: E = A×B, F = C×D, G = E×F
// ---------------------------------------------------------------------------

pub(crate) fn threemm_program() -> Program {
    Program::new("3MM")
        .with_kernel(matmul_kernel("mm3_k1", "a", "b", "e"))
        .with_kernel(matmul_kernel("mm3_k2", "c", "d", "f"))
        .with_kernel(matmul_kernel("mm3_k3", "e", "f", "g"))
}

pub(crate) fn threemm_run(s: &mut Session, d: &Dims, gen: &InputGen) -> Result<Outputs, OclError> {
    let n = d.ni;
    let a = s.create_buffer("A", n * n, Precision::Double)?;
    let b = s.create_buffer("B", n * n, Precision::Double)?;
    let c = s.create_buffer("C", n * n, Precision::Double)?;
    let dd = s.create_buffer("D", n * n, Precision::Double)?;
    let e = s.create_buffer("E", n * n, Precision::Double)?;
    let f = s.create_buffer("F", n * n, Precision::Double)?;
    let g = s.create_buffer("G", n * n, Precision::Double)?;
    for (id, tag) in [(a, "A"), (b, "B"), (c, "C"), (dd, "D")] {
        s.enqueue_write(id, &gen.array(tag, n * n))?;
    }
    let nn = KernelArg::Int(n as i64);
    s.launch_kernel(
        "mm3_k1",
        [n, n],
        &[
            ("a", KernelArg::Buffer(a)),
            ("b", KernelArg::Buffer(b)),
            ("e", KernelArg::Buffer(e)),
            ("n", nn.clone()),
        ],
    )?;
    s.launch_kernel(
        "mm3_k2",
        [n, n],
        &[
            ("c", KernelArg::Buffer(c)),
            ("d", KernelArg::Buffer(dd)),
            ("f", KernelArg::Buffer(f)),
            ("n", nn.clone()),
        ],
    )?;
    s.launch_kernel(
        "mm3_k3",
        [n, n],
        &[
            ("e", KernelArg::Buffer(e)),
            ("f", KernelArg::Buffer(f)),
            ("g", KernelArg::Buffer(g)),
            ("n", nn),
        ],
    )?;
    Ok(vec![("G".to_owned(), s.enqueue_read(g)?)])
}

// ---------------------------------------------------------------------------
// SYRK: C = β·C + α·A·Aᵀ
// ---------------------------------------------------------------------------

pub(crate) fn syrk_program() -> Program {
    Program::new("SYRK").with_kernel(
        kernel("syrk")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("c", Precision::Double, Access::ReadWrite)
            .float_param_like("alpha", "c")
            .float_param_like("beta", "c")
            .int_param("n")
            .int_param("m")
            .body(vec![
                let_("j", global_id(0)),
                let_("i", global_id(1)),
                if_(
                    lt(var("i"), var("n")),
                    vec![if_(
                        lt(var("j"), var("n")),
                        vec![
                            let_acc("acc", "c", flit(0.0)),
                            for_(
                                "k",
                                int(0),
                                var("m"),
                                vec![add_assign(
                                    "acc",
                                    load("a", idx2(var("i"), var("k"), var("m")))
                                        * load("a", idx2(var("j"), var("k"), var("m"))),
                                )],
                            ),
                            store(
                                "c",
                                idx2(var("i"), var("j"), var("n")),
                                var("beta") * load("c", idx2(var("i"), var("j"), var("n")))
                                    + var("alpha") * var("acc"),
                            ),
                        ],
                    )],
                ),
            ]),
    )
}

pub(crate) fn syrk_run(s: &mut Session, d: &Dims, gen: &InputGen) -> Result<Outputs, OclError> {
    let (n, m) = (d.ni, d.nj);
    let a = s.create_buffer("A", n * m, Precision::Double)?;
    let c = s.create_buffer("C", n * n, Precision::Double)?;
    s.enqueue_write(a, &gen.array("A", n * m))?;
    s.enqueue_write(c, &gen.array("C", n * n))?;
    s.launch_kernel(
        "syrk",
        [n, n],
        &[
            ("a", KernelArg::Buffer(a)),
            ("c", KernelArg::Buffer(c)),
            ("alpha", KernelArg::Float(1.5)),
            ("beta", KernelArg::Float(1.2)),
            ("n", KernelArg::Int(n as i64)),
            ("m", KernelArg::Int(m as i64)),
        ],
    )?;
    Ok(vec![("C".to_owned(), s.enqueue_read(c)?)])
}

// ---------------------------------------------------------------------------
// SYR2K: C = β·C + α·A·Bᵀ + α·B·Aᵀ
// ---------------------------------------------------------------------------

pub(crate) fn syr2k_program() -> Program {
    Program::new("SYR2K").with_kernel(
        kernel("syr2k")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("b", Precision::Double, Access::Read)
            .buffer("c", Precision::Double, Access::ReadWrite)
            .float_param_like("alpha", "c")
            .float_param_like("beta", "c")
            .int_param("n")
            .int_param("m")
            .body(vec![
                let_("j", global_id(0)),
                let_("i", global_id(1)),
                if_(
                    lt(var("i"), var("n")),
                    vec![if_(
                        lt(var("j"), var("n")),
                        vec![
                            let_acc("acc", "c", flit(0.0)),
                            for_(
                                "k",
                                int(0),
                                var("m"),
                                vec![add_assign(
                                    "acc",
                                    load("a", idx2(var("i"), var("k"), var("m")))
                                        * load("b", idx2(var("j"), var("k"), var("m")))
                                        + load("b", idx2(var("i"), var("k"), var("m")))
                                            * load("a", idx2(var("j"), var("k"), var("m"))),
                                )],
                            ),
                            store(
                                "c",
                                idx2(var("i"), var("j"), var("n")),
                                var("beta") * load("c", idx2(var("i"), var("j"), var("n")))
                                    + var("alpha") * var("acc"),
                            ),
                        ],
                    )],
                ),
            ]),
    )
}

pub(crate) fn syr2k_run(s: &mut Session, d: &Dims, gen: &InputGen) -> Result<Outputs, OclError> {
    let (n, m) = (d.ni, d.nj);
    let a = s.create_buffer("A", n * m, Precision::Double)?;
    let b = s.create_buffer("B", n * m, Precision::Double)?;
    let c = s.create_buffer("C", n * n, Precision::Double)?;
    s.enqueue_write(a, &gen.array("A", n * m))?;
    s.enqueue_write(b, &gen.array("B", n * m))?;
    s.enqueue_write(c, &gen.array("C", n * n))?;
    s.launch_kernel(
        "syr2k",
        [n, n],
        &[
            ("a", KernelArg::Buffer(a)),
            ("b", KernelArg::Buffer(b)),
            ("c", KernelArg::Buffer(c)),
            ("alpha", KernelArg::Float(1.5)),
            ("beta", KernelArg::Float(1.2)),
            ("n", KernelArg::Int(n as i64)),
            ("m", KernelArg::Int(m as i64)),
        ],
    )?;
    Ok(vec![("C".to_owned(), s.enqueue_read(c)?)])
}

/// Reference GEMM in plain Rust, matching the kernel's accumulation order
/// exactly (used by tests to pin down bit-exactness of the baseline).
#[allow(dead_code)] // exercised by unit tests only
#[allow(clippy::too_many_arguments)] // mirrors the kernel signature
#[must_use]
pub fn gemm_reference(
    a: &[f64],
    b: &[f64],
    c: &[f64],
    ni: usize,
    nj: usize,
    nk: usize,
    alpha: f64,
    beta: f64,
) -> Vec<f64> {
    let mut out = vec![0.0; ni * nj];
    for i in 0..ni {
        for j in 0..nj {
            let mut acc = 0.0;
            for k in 0..nk {
                acc += a[i * nk + k] * b[k * nj + j];
            }
            out[i * nj + j] = alpha * acc + beta * c[i * nj + j];
        }
    }
    out
}
