//! Deterministic, seeded fault injection for the PreScaler pipeline.
//!
//! Real heterogeneous systems fail in ways the simulator's happy path never
//! exercises: transfers abort transiently, kernel launches bounce, device
//! memory bit-flips into NaN/Inf, the hours-old inspector database rots on
//! disk, and every timing measurement carries noise. This crate models all
//! five as a [`FaultPlan`] — a pure seeded configuration threaded through
//! `SystemModel` into the runtime — so robustness scenarios are exactly
//! reproducible: the same seed yields the same fault sequence on every run.
//!
//! # Design
//!
//! A plan holds per-[`FaultKind`] *rates* plus a seed. Each injection site
//! asks the plan a question (`transfer_fails()`, `corrupt_buffer()`, ...);
//! the plan hashes `(seed, kind, site-counter)` with splitmix64 and compares
//! against the rate. Counters are shared across clones through an [`Arc`],
//! so the `SystemModel` clone living inside a `Session` draws from the same
//! deterministic stream as the original.
//!
//! An inert plan (every rate zero, the default) is guaranteed to leave the
//! pipeline bit-identical to a build without fault hooks: every query
//! short-circuits before touching its counter, and the noise factor is
//! exactly `1.0`.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The categories of injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A host↔device transfer aborts transiently.
    Transfer,
    /// A kernel launch bounces transiently.
    KernelLaunch,
    /// A transferred buffer element is poisoned with NaN/Inf.
    BufferCorruption,
    /// An inspector-database timing entry is corrupted.
    DbGridCorruption,
    /// A virtual-clock measurement picks up multiplicative noise.
    ClockNoise,
    /// A production run's inputs drift away from the tuning distribution
    /// (modeled as a multiplicative gain on the generated input data).
    InputDrift,
    /// The GPU thermally throttles: a kernel launch executes at a reduced
    /// effective clock (system drift, not measurement noise).
    Throttle,
    /// The PCIe link degrades: a transfer moves at a reduced effective
    /// bandwidth (link retraining, lane drop, contention).
    BandwidthDrop,
    /// The device falls off the bus mid-operation — a *fatal*, non-
    /// retryable loss, unlike the transient transfer/launch bounces.
    DeviceLost,
    /// An arrival spike hits a serving front-end: extra requests land at
    /// the same virtual instant, pressuring the admission queue.
    OverloadBurst,
}

impl FaultKind {
    const ALL: [FaultKind; 10] = [
        FaultKind::Transfer,
        FaultKind::KernelLaunch,
        FaultKind::BufferCorruption,
        FaultKind::DbGridCorruption,
        FaultKind::ClockNoise,
        FaultKind::InputDrift,
        FaultKind::Throttle,
        FaultKind::BandwidthDrop,
        FaultKind::DeviceLost,
        FaultKind::OverloadBurst,
    ];

    fn index(self) -> usize {
        match self {
            FaultKind::Transfer => 0,
            FaultKind::KernelLaunch => 1,
            FaultKind::BufferCorruption => 2,
            FaultKind::DbGridCorruption => 3,
            FaultKind::ClockNoise => 4,
            FaultKind::InputDrift => 5,
            FaultKind::Throttle => 6,
            FaultKind::BandwidthDrop => 7,
            FaultKind::DeviceLost => 8,
            FaultKind::OverloadBurst => 9,
        }
    }

    /// Domain-separation salt mixed into every draw for this kind.
    fn salt(self) -> u64 {
        // Arbitrary odd constants; distinct per kind.
        [
            0x9E6C_63D0_876A_3F35,
            0xD1B5_4A32_D192_ED03,
            0x8CB9_2BA7_2F3D_8DD7,
            0xAAAA_AAAA_AAAA_AAAB,
            0x6A09_E667_F3BC_C909,
            0xB7E1_5162_8AED_2A6B,
            0x3C6E_F372_FE94_F82B,
            0xA54F_F53A_5F1D_36F1,
            0x510E_527F_ADE6_82D1,
            0x9B05_688C_2B3E_6C1F,
        ][self.index()]
    }
}

/// The poison written into a corrupted buffer element.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Poison {
    /// Quiet NaN.
    Nan,
    /// Positive infinity.
    PosInf,
    /// Negative infinity.
    NegInf,
}

impl Poison {
    /// The poisoned value.
    #[must_use]
    pub fn value(self) -> f64 {
        match self {
            Poison::Nan => f64::NAN,
            Poison::PosInf => f64::INFINITY,
            Poison::NegInf => f64::NEG_INFINITY,
        }
    }
}

/// A buffer-corruption event: which element to poison and with what.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Corruption {
    /// Selector reduced modulo the buffer length by the injection site.
    pub index_selector: u64,
    /// The poison value.
    pub poison: Poison,
}

/// Pure, comparable fault configuration (rates + seed).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability a transfer attempt aborts.
    pub transfer_failure_rate: f64,
    /// Probability a kernel-launch attempt bounces.
    pub launch_failure_rate: f64,
    /// Probability a transferred buffer gets one poisoned element.
    pub buffer_corruption_rate: f64,
    /// Probability an inspector-DB timing entry is corrupted.
    pub db_corruption_rate: f64,
    /// Relative amplitude of multiplicative clock noise (`0.1` = ±10%).
    pub clock_noise: f64,
    /// Probability a production run's inputs drift.
    pub input_drift_rate: f64,
    /// Relative magnitude of input drift: a drifting run's inputs are
    /// scaled by a gain in `[1 + m/2, 1 + m]` (`m = 0` means no drift even
    /// when the rate fires).
    pub input_drift_magnitude: f64,
    /// Probability a kernel launch executes thermally throttled.
    pub throttle_rate: f64,
    /// Depth of the throttle curve: a throttled launch runs at an
    /// effective clock factor in `[1 - d, 1 - d/2]` (`d = 0` means no
    /// throttling even when the rate fires).
    pub throttle_depth: f64,
    /// Probability a transfer moves over a degraded PCIe link.
    pub bandwidth_drop_rate: f64,
    /// Depth of the bandwidth drop: a degraded transfer sees an effective
    /// bandwidth factor in `[1 - d, 1 - d/2]` (`d = 0` disables the kind).
    pub bandwidth_drop_depth: f64,
    /// Probability a device operation finds the device gone (fatal).
    pub device_loss_rate: f64,
    /// Probability a serving arrival slot turns into an overload burst.
    pub overload_burst_rate: f64,
    /// Size of a burst: a bursting slot injects between 1 and this many
    /// extra arrivals (`0` means no burst even when the rate fires).
    pub overload_burst_size: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0,
            transfer_failure_rate: 0.0,
            launch_failure_rate: 0.0,
            buffer_corruption_rate: 0.0,
            db_corruption_rate: 0.0,
            clock_noise: 0.0,
            input_drift_rate: 0.0,
            input_drift_magnitude: 0.0,
            throttle_rate: 0.0,
            throttle_depth: 0.0,
            bandwidth_drop_rate: 0.0,
            bandwidth_drop_depth: 0.0,
            device_loss_rate: 0.0,
            overload_burst_rate: 0.0,
            overload_burst_size: 0,
        }
    }
}

impl FaultConfig {
    fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::Transfer => self.transfer_failure_rate,
            FaultKind::KernelLaunch => self.launch_failure_rate,
            FaultKind::BufferCorruption => self.buffer_corruption_rate,
            FaultKind::DbGridCorruption => self.db_corruption_rate,
            FaultKind::ClockNoise => self.clock_noise,
            FaultKind::InputDrift => {
                if self.input_drift_magnitude > 0.0 {
                    self.input_drift_rate
                } else {
                    0.0
                }
            }
            FaultKind::Throttle => {
                if self.throttle_depth > 0.0 {
                    self.throttle_rate
                } else {
                    0.0
                }
            }
            FaultKind::BandwidthDrop => {
                if self.bandwidth_drop_depth > 0.0 {
                    self.bandwidth_drop_rate
                } else {
                    0.0
                }
            }
            FaultKind::DeviceLost => self.device_loss_rate,
            FaultKind::OverloadBurst => {
                if self.overload_burst_size > 0 {
                    self.overload_burst_rate
                } else {
                    0.0
                }
            }
        }
    }

    /// True when every rate is zero (no fault can ever fire).
    #[must_use]
    pub fn is_inert(&self) -> bool {
        FaultKind::ALL.iter().all(|k| self.rate(*k) <= 0.0)
    }
}

/// A seeded fault-injection plan.
///
/// Clones share the per-site counters (and therefore the fault stream);
/// equality, `Debug`, and serialization consider only the configuration.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    config: FaultConfig,
    counters: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters([AtomicU64; 10]);

impl PartialEq for FaultPlan {
    fn eq(&self, other: &FaultPlan) -> bool {
        self.config == other.config
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// A plan that never injects anything (the default).
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with the given configuration.
    #[must_use]
    pub fn new(config: FaultConfig) -> FaultPlan {
        FaultPlan {
            config,
            counters: Arc::default(),
        }
    }

    /// Seeded plan with all rates zero; combine with the `with_*` builders.
    #[must_use]
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed,
            ..FaultConfig::default()
        })
    }

    /// Sets the transfer-failure rate.
    #[must_use]
    pub fn with_transfer_failures(mut self, rate: f64) -> FaultPlan {
        self.config.transfer_failure_rate = rate;
        self
    }

    /// Sets the kernel-launch-failure rate.
    #[must_use]
    pub fn with_launch_failures(mut self, rate: f64) -> FaultPlan {
        self.config.launch_failure_rate = rate;
        self
    }

    /// Sets the buffer-corruption rate.
    #[must_use]
    pub fn with_buffer_corruption(mut self, rate: f64) -> FaultPlan {
        self.config.buffer_corruption_rate = rate;
        self
    }

    /// Sets the inspector-DB corruption rate.
    #[must_use]
    pub fn with_db_corruption(mut self, rate: f64) -> FaultPlan {
        self.config.db_corruption_rate = rate;
        self
    }

    /// Sets the relative clock-noise amplitude.
    #[must_use]
    pub fn with_clock_noise(mut self, amplitude: f64) -> FaultPlan {
        self.config.clock_noise = amplitude;
        self
    }

    /// Sets the input-drift rate and relative magnitude. A drifting run's
    /// inputs are scaled by a gain in `[1 + magnitude/2, 1 + magnitude]`.
    #[must_use]
    pub fn with_input_drift(mut self, rate: f64, magnitude: f64) -> FaultPlan {
        self.config.input_drift_rate = rate;
        self.config.input_drift_magnitude = magnitude;
        self
    }

    /// Sets the thermal-throttle rate and curve depth. A throttled kernel
    /// launch executes at an effective clock factor in `[1 - depth,
    /// 1 - depth/2]`.
    #[must_use]
    pub fn with_throttle(mut self, rate: f64, depth: f64) -> FaultPlan {
        self.config.throttle_rate = rate;
        self.config.throttle_depth = depth;
        self
    }

    /// Sets the PCIe bandwidth-drop rate and depth. A degraded transfer
    /// moves at an effective bandwidth factor in `[1 - depth,
    /// 1 - depth/2]`.
    #[must_use]
    pub fn with_bandwidth_drop(mut self, rate: f64, depth: f64) -> FaultPlan {
        self.config.bandwidth_drop_rate = rate;
        self.config.bandwidth_drop_depth = depth;
        self
    }

    /// Sets the device-loss rate (fatal, non-retryable).
    #[must_use]
    pub fn with_device_loss(mut self, rate: f64) -> FaultPlan {
        self.config.device_loss_rate = rate;
        self
    }

    /// Sets the overload-burst rate and maximum burst size. A bursting
    /// arrival slot injects between 1 and `size` extra requests at the
    /// same virtual instant.
    #[must_use]
    pub fn with_overload_burst(mut self, rate: f64, size: u64) -> FaultPlan {
        self.config.overload_burst_rate = rate;
        self.config.overload_burst_size = size;
        self
    }

    /// Forks an independent plan for a sub-experiment.
    ///
    /// The fork keeps every rate of the parent but derives a fresh seed
    /// from `salt` and starts its counters at zero, so the child draws a
    /// fault stream that depends only on `(parent config, salt)` — not on
    /// how far the parent's stream has advanced. Evaluating the same salt
    /// twice therefore replays the exact same faults, which is what makes
    /// memoized and speculatively parallel trial execution deterministic.
    /// Forks of an inert plan are inert.
    #[must_use]
    pub fn fork(&self, salt: u64) -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed: splitmix64(self.config.seed ^ salt),
            ..self.config
        })
    }

    /// Forks a plan with the *same* configuration (seed included) but
    /// fresh counters starting at zero.
    ///
    /// This is the explicit spelling of "replay this plan from the top
    /// in isolation". It differs from both neighbours in ways that have
    /// bitten before:
    ///
    /// * `clone()` shares the per-site counters through the `Arc`, so a
    ///   clone *continues* the parent's stream — draws on either side
    ///   advance both. Handing a clone to a sub-experiment silently
    ///   couples its faults to how far the parent has already drawn.
    /// * [`FaultPlan::fork`] derives a *different* seed from a salt, so
    ///   the child replays a decorrelated stream.
    ///
    /// `fork_fresh` replays the *identical* stream from position zero,
    /// unaffected by the parent's progress and without perturbing it —
    /// what a test harness wants when it re-runs one scenario for
    /// comparison against a recorded outcome.
    #[must_use]
    pub fn fork_fresh(&self) -> FaultPlan {
        FaultPlan::new(self.config)
    }

    /// The plan's configuration.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// True when no fault can ever fire.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.config.is_inert()
    }

    /// True when clock noise is enabled.
    #[must_use]
    pub fn has_clock_noise(&self) -> bool {
        self.config.clock_noise > 0.0
    }

    /// Resets the fault stream to its beginning (counters to zero).
    pub fn reset(&self) {
        for c in &self.counters.0 {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Draws the next random bits for `kind`, advancing its counter.
    fn draw(&self, kind: FaultKind) -> u64 {
        let n = self.counters.0[kind.index()].fetch_add(1, Ordering::Relaxed);
        splitmix64(self.config.seed ^ kind.salt() ^ splitmix64(n))
    }

    fn fires(&self, kind: FaultKind) -> bool {
        let rate = self.config.rate(kind);
        if rate <= 0.0 {
            return false;
        }
        unit(self.draw(kind)) < rate
    }

    /// Does the next transfer attempt abort?
    #[must_use]
    pub fn transfer_fails(&self) -> bool {
        self.fires(FaultKind::Transfer)
    }

    /// Does the next kernel-launch attempt bounce?
    #[must_use]
    pub fn launch_fails(&self) -> bool {
        self.fires(FaultKind::KernelLaunch)
    }

    /// Should the next transferred buffer be poisoned — and if so, where
    /// and with what?
    #[must_use]
    pub fn corrupt_buffer(&self) -> Option<Corruption> {
        if !self.fires(FaultKind::BufferCorruption) {
            return None;
        }
        let bits = self.draw(FaultKind::BufferCorruption);
        let poison = match bits % 3 {
            0 => Poison::Nan,
            1 => Poison::PosInf,
            _ => Poison::NegInf,
        };
        Some(Corruption {
            index_selector: bits >> 2,
            poison,
        })
    }

    /// Is the next inspector-DB timing entry corrupted? Returns the bogus
    /// value to store (NaN or a negative time).
    #[must_use]
    pub fn corrupt_db_entry(&self) -> Option<f64> {
        if !self.fires(FaultKind::DbGridCorruption) {
            return None;
        }
        let bits = self.draw(FaultKind::DbGridCorruption);
        Some(if bits & 1 == 0 { f64::NAN } else { -1.0e-6 })
    }

    /// Multiplicative noise factor for the next timing measurement.
    ///
    /// Exactly `1.0` when noise is disabled; otherwise uniform in
    /// `[1 - a, 1 + a]` clamped to stay positive.
    #[must_use]
    pub fn time_noise_factor(&self) -> f64 {
        let a = self.config.clock_noise;
        if a <= 0.0 {
            return 1.0;
        }
        let u = unit(self.draw(FaultKind::ClockNoise));
        (1.0 - a + 2.0 * a * u).max(0.05)
    }

    /// Multiplicative input gain for the next production run.
    ///
    /// Exactly `1.0` when drift is disabled or the run is not selected;
    /// otherwise uniform in `[1 + m/2, 1 + m]` for magnitude `m` — the
    /// same seeded, replayable stream discipline as every other kind.
    #[must_use]
    pub fn input_drift_gain(&self) -> f64 {
        if !self.fires(FaultKind::InputDrift) {
            return 1.0;
        }
        let m = self.config.input_drift_magnitude;
        let u = unit(self.draw(FaultKind::InputDrift));
        1.0 + m * (0.5 + 0.5 * u)
    }

    /// Effective GPU clock factor for the next kernel launch.
    ///
    /// Exactly `1.0` when throttling is disabled or the launch is not
    /// selected; otherwise uniform in `[1 - d, 1 - d/2]` for depth `d`,
    /// clamped to stay positive — the seeded equivalent of a thermal
    /// throttle curve biting on this launch.
    #[must_use]
    pub fn throttle_factor(&self) -> f64 {
        if !self.fires(FaultKind::Throttle) {
            return 1.0;
        }
        let d = self.config.throttle_depth;
        let u = unit(self.draw(FaultKind::Throttle));
        (1.0 - d * (0.5 + 0.5 * u)).max(0.05)
    }

    /// Effective PCIe bandwidth factor for the next transfer.
    ///
    /// Exactly `1.0` when the kind is disabled or the transfer is not
    /// selected; otherwise uniform in `[1 - d, 1 - d/2]` for depth `d`,
    /// clamped to stay positive.
    #[must_use]
    pub fn bandwidth_factor(&self) -> f64 {
        if !self.fires(FaultKind::BandwidthDrop) {
            return 1.0;
        }
        let d = self.config.bandwidth_drop_depth;
        let u = unit(self.draw(FaultKind::BandwidthDrop));
        (1.0 - d * (0.5 + 0.5 * u)).max(0.05)
    }

    /// Is the device gone for the next operation? Unlike the transient
    /// transfer/launch bounces this is fatal: the runtime surfaces it as a
    /// non-retryable error instead of riding it out.
    #[must_use]
    pub fn device_lost(&self) -> bool {
        self.fires(FaultKind::DeviceLost)
    }

    /// Extra arrivals injected at the next serving arrival slot.
    ///
    /// Exactly `0` when the kind is disabled or the slot is not selected;
    /// otherwise uniform in `[1, size]` — the seeded equivalent of a
    /// traffic spike hammering the admission queue at one instant.
    #[must_use]
    pub fn overload_burst(&self) -> u64 {
        if !self.fires(FaultKind::OverloadBurst) {
            return 0;
        }
        let size = self.config.overload_burst_size;
        1 + self.draw(FaultKind::OverloadBurst) % size
    }
}

/// What happens to the write-ahead journal's in-flight record when a
/// [`CrashPoint`] fires — the three ways a real `write(2)` dies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TearMode {
    /// The record made it to disk intact before the process died.
    Clean,
    /// A torn write: the final `bytes` bytes of the file are lost.
    Truncate {
        /// Bytes cut off the tail.
        bytes: u32,
    },
    /// A partial next write: `bytes` bytes of garbage land after the
    /// last complete record.
    Garbage {
        /// Garbage bytes appended.
        bytes: u32,
    },
}

/// The panic payload of a simulated process kill. Crash-recovery
/// harnesses `catch_unwind` and downcast to this type; anything else
/// unwinding out of a tuning run is a real bug and is re-raised.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimulatedCrash {
    /// The 1-based trial boundary the crash fired at.
    pub boundary: u64,
}

/// A deterministic process-kill point for crash-recovery drills.
///
/// A crash point is armed with a 1-based trial *boundary*: the consumer
/// calls [`CrashPoint::observe_trial`] once after each durably completed
/// trial, and the call returns `true` exactly once — when the counter
/// reaches the boundary. The consumer then applies the configured
/// [`TearMode`] to its journal tail and dies (via
/// [`std::panic::panic_any`] with a [`SimulatedCrash`] payload).
///
/// Clones share the observation counter, mirroring [`FaultPlan`]'s
/// shared-stream discipline, and [`CrashPoint::seeded`] derives both the
/// boundary and the tear mode from a seed with the same splitmix64
/// generator as every other fault kind — the same seed always kills the
/// same run at the same place in the same way.
#[derive(Clone, Debug)]
pub struct CrashPoint {
    boundary: u64,
    tear: TearMode,
    observed: Arc<AtomicU64>,
}

impl CrashPoint {
    /// A crash point firing when the `boundary`-th trial completes
    /// (1-based), with a clean journal tail. A boundary of 0 never fires.
    #[must_use]
    pub fn at(boundary: u64) -> CrashPoint {
        CrashPoint {
            boundary,
            tear: TearMode::Clean,
            observed: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Sets what the crash does to the journal's tail.
    #[must_use]
    pub fn with_tear(mut self, tear: TearMode) -> CrashPoint {
        self.tear = tear;
        self
    }

    /// A seeded crash point: the boundary lands uniformly in
    /// `1..=max_boundary` and the tear mode (clean / torn / garbage, with
    /// a seeded size) is drawn from the same stream.
    #[must_use]
    pub fn seeded(seed: u64, max_boundary: u64) -> CrashPoint {
        let salt = 0xC4A5_44C7_25D9_8B11u64; // domain separation for crashes
        let a = splitmix64(seed ^ salt);
        let b = splitmix64(a);
        let c = splitmix64(b);
        let boundary = if max_boundary == 0 {
            0
        } else {
            1 + a % max_boundary
        };
        // 1..=36: strictly inside one 37-byte journal record, so a torn
        // tail always leaves a partial record to recover from.
        let bytes = 1 + (c % 36) as u32;
        let tear = match b % 3 {
            0 => TearMode::Clean,
            1 => TearMode::Truncate { bytes },
            _ => TearMode::Garbage { bytes },
        };
        CrashPoint::at(boundary).with_tear(tear)
    }

    /// The armed boundary.
    #[must_use]
    pub fn boundary(&self) -> u64 {
        self.boundary
    }

    /// The armed tear mode.
    #[must_use]
    pub fn tear(&self) -> TearMode {
        self.tear
    }

    /// Records one completed trial; `true` exactly when this trial is the
    /// armed boundary (fires at most once, clones fire together).
    #[must_use]
    pub fn observe_trial(&self) -> bool {
        if self.boundary == 0 {
            return false;
        }
        self.observed.fetch_add(1, Ordering::Relaxed) + 1 == self.boundary
    }

    /// Trials observed so far.
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.config;
        if c.is_inert() {
            return write!(f, "faults: none");
        }
        write!(
            f,
            "faults: seed={} transfer={} launch={} corrupt={} db={} noise={} drift={}x{} \
             throttle={}x{} bwdrop={}x{} devloss={} burst={}x{}",
            c.seed,
            c.transfer_failure_rate,
            c.launch_failure_rate,
            c.buffer_corruption_rate,
            c.db_corruption_rate,
            c.clock_noise,
            c.input_drift_rate,
            c.input_drift_magnitude,
            c.throttle_rate,
            c.throttle_depth,
            c.bandwidth_drop_rate,
            c.bandwidth_drop_depth,
            c.device_loss_rate,
            c.overload_burst_rate,
            c.overload_burst_size
        )
    }
}

// Serialization covers the configuration only; counters restart at zero on
// deserialization, which preserves the invariant that a freshly loaded
// system replays the same fault stream from the top.
impl serde::Serialize for FaultPlan {
    fn serialize(&self, out: &mut String) {
        let c = &self.config;
        out.push_str("{\"seed\":");
        serde::Serialize::serialize(&c.seed, out);
        out.push_str(",\"transfer_failure_rate\":");
        serde::Serialize::serialize(&c.transfer_failure_rate, out);
        out.push_str(",\"launch_failure_rate\":");
        serde::Serialize::serialize(&c.launch_failure_rate, out);
        out.push_str(",\"buffer_corruption_rate\":");
        serde::Serialize::serialize(&c.buffer_corruption_rate, out);
        out.push_str(",\"db_corruption_rate\":");
        serde::Serialize::serialize(&c.db_corruption_rate, out);
        out.push_str(",\"clock_noise\":");
        serde::Serialize::serialize(&c.clock_noise, out);
        out.push_str(",\"input_drift_rate\":");
        serde::Serialize::serialize(&c.input_drift_rate, out);
        out.push_str(",\"input_drift_magnitude\":");
        serde::Serialize::serialize(&c.input_drift_magnitude, out);
        out.push_str(",\"throttle_rate\":");
        serde::Serialize::serialize(&c.throttle_rate, out);
        out.push_str(",\"throttle_depth\":");
        serde::Serialize::serialize(&c.throttle_depth, out);
        out.push_str(",\"bandwidth_drop_rate\":");
        serde::Serialize::serialize(&c.bandwidth_drop_rate, out);
        out.push_str(",\"bandwidth_drop_depth\":");
        serde::Serialize::serialize(&c.bandwidth_drop_depth, out);
        out.push_str(",\"device_loss_rate\":");
        serde::Serialize::serialize(&c.device_loss_rate, out);
        out.push_str(",\"overload_burst_rate\":");
        serde::Serialize::serialize(&c.overload_burst_rate, out);
        out.push_str(",\"overload_burst_size\":");
        serde::Serialize::serialize(&c.overload_burst_size, out);
        out.push('}');
    }
}

impl serde::Deserialize for FaultPlan {
    fn deserialize(v: &serde::json::Value) -> Result<FaultPlan, serde::json::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::json::Error::new("expected object for FaultPlan"))?;
        let f = |name: &str| -> Result<f64, serde::json::Error> {
            match serde::json::get(entries, name) {
                Some(v) => serde::Deserialize::deserialize(v),
                None => Ok(0.0),
            }
        };
        let seed = match serde::json::get(entries, "seed") {
            Some(v) => serde::Deserialize::deserialize(v)?,
            None => 0,
        };
        Ok(FaultPlan::new(FaultConfig {
            seed,
            transfer_failure_rate: f("transfer_failure_rate")?,
            launch_failure_rate: f("launch_failure_rate")?,
            buffer_corruption_rate: f("buffer_corruption_rate")?,
            db_corruption_rate: f("db_corruption_rate")?,
            clock_noise: f("clock_noise")?,
            // Absent in pre-drift snapshots: defaults keep them inert.
            input_drift_rate: f("input_drift_rate")?,
            input_drift_magnitude: f("input_drift_magnitude")?,
            // Absent in pre-system-drift snapshots: same inert defaults.
            throttle_rate: f("throttle_rate")?,
            throttle_depth: f("throttle_depth")?,
            bandwidth_drop_rate: f("bandwidth_drop_rate")?,
            bandwidth_drop_depth: f("bandwidth_drop_depth")?,
            device_loss_rate: f("device_loss_rate")?,
            // Absent in pre-serving snapshots: absent means no bursts.
            overload_burst_rate: f("overload_burst_rate")?,
            overload_burst_size: match serde::json::get(entries, "overload_burst_size") {
                Some(v) => serde::Deserialize::deserialize(v)?,
                None => 0,
            },
        }))
    }

    fn missing(_field: &str) -> Result<FaultPlan, serde::json::Error> {
        // A system serialized before fault injection existed simply has no
        // faults — absent field means inert plan.
        Ok(FaultPlan::none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires_and_has_unit_noise() {
        let plan = FaultPlan::none();
        for _ in 0..100 {
            assert!(!plan.transfer_fails());
            assert!(!plan.launch_fails());
            assert!(plan.corrupt_buffer().is_none());
            assert!(plan.corrupt_db_entry().is_none());
            assert!(plan.time_noise_factor() == 1.0);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let collect =
            |plan: &FaultPlan| -> Vec<bool> { (0..200).map(|_| plan.transfer_fails()).collect() };
        let a = FaultPlan::seeded(42).with_transfer_failures(0.3);
        let b = FaultPlan::seeded(42).with_transfer_failures(0.3);
        assert_eq!(collect(&a), collect(&b));
        let c = FaultPlan::seeded(43).with_transfer_failures(0.3);
        assert_ne!(collect(&a), collect(&c));
    }

    #[test]
    fn clones_share_the_stream() {
        let a = FaultPlan::seeded(7).with_transfer_failures(0.5);
        let b = a.clone();
        // Interleaved draws across clones advance one shared counter; a
        // fresh plan with the same seed replays the union of both.
        let mut interleaved = Vec::new();
        for _ in 0..100 {
            interleaved.push(a.transfer_fails());
            interleaved.push(b.transfer_fails());
        }
        let fresh = FaultPlan::seeded(7).with_transfer_failures(0.5);
        let replay: Vec<bool> = (0..200).map(|_| fresh.transfer_fails()).collect();
        assert_eq!(interleaved, replay);
    }

    #[test]
    fn forks_are_independent_and_replayable() {
        let parent = FaultPlan::seeded(7).with_transfer_failures(0.5);
        // Advance the parent's stream; forks must not care.
        for _ in 0..17 {
            let _ = parent.transfer_fails();
        }
        let collect =
            |plan: &FaultPlan| -> Vec<bool> { (0..200).map(|_| plan.transfer_fails()).collect() };
        let a = collect(&parent.fork(99));
        for _ in 0..5 {
            let _ = parent.transfer_fails();
        }
        let b = collect(&parent.fork(99));
        assert_eq!(a, b, "same salt must replay the same stream");
        assert_ne!(a, collect(&parent.fork(100)), "salts must decorrelate");
        assert_eq!(
            parent.fork(99).config().transfer_failure_rate,
            0.5,
            "forks keep the parent's rates"
        );
        assert!(
            FaultPlan::none().fork(99).is_inert(),
            "forks of an inert plan are inert"
        );
    }

    #[test]
    fn fresh_forks_replay_while_clones_share() {
        let collect =
            |plan: &FaultPlan| -> Vec<bool> { (0..100).map(|_| plan.transfer_fails()).collect() };
        let parent = FaultPlan::seeded(7).with_transfer_failures(0.5);
        let from_top = collect(&parent.fork_fresh());
        // Advance the parent; a clone continues mid-stream, a fresh fork
        // still replays from the top — and drawing from the fork must not
        // have advanced the parent either.
        for _ in 0..17 {
            let _ = parent.transfer_fails();
        }
        let cloned = parent.clone();
        assert_ne!(
            collect(&cloned),
            from_top,
            "a clone shares the advanced counter"
        );
        let fresh = parent.fork_fresh();
        assert_eq!(collect(&fresh), from_top, "fresh fork replays from zero");
        assert_eq!(fresh.config(), parent.config(), "configuration is kept");
        // 17 parent draws + 100 clone draws; the two fork_fresh streams
        // drew 200 times without moving the shared counter.
        let continued = parent.transfer_fails();
        let reference = FaultPlan::seeded(7).with_transfer_failures(0.5);
        let replay: Vec<bool> = (0..118).map(|_| reference.transfer_fails()).collect();
        assert_eq!(continued, replay[117], "forks never perturb the parent");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan::seeded(1).with_transfer_failures(0.25);
        let fired = (0..10_000).filter(|_| plan.transfer_fails()).count();
        assert!((2000..3000).contains(&fired), "fired {fired}/10000");
    }

    #[test]
    fn noise_factor_stays_within_amplitude() {
        let plan = FaultPlan::seeded(3).with_clock_noise(0.2);
        for _ in 0..1000 {
            let f = plan.time_noise_factor();
            assert!((0.8..=1.2).contains(&f), "{f}");
        }
    }

    #[test]
    fn reset_replays_from_the_top() {
        let plan = FaultPlan::seeded(11).with_launch_failures(0.4);
        let first: Vec<bool> = (0..50).map(|_| plan.launch_fails()).collect();
        plan.reset();
        let second: Vec<bool> = (0..50).map(|_| plan.launch_fails()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn inert_drift_is_exactly_unity() {
        let plan = FaultPlan::none();
        for _ in 0..100 {
            assert!(plan.input_drift_gain() == 1.0);
        }
        // Magnitude zero keeps the kind inert even with a positive rate.
        let rate_only = FaultPlan::seeded(5).with_input_drift(1.0, 0.0);
        assert!(rate_only.is_inert());
        assert!(rate_only.input_drift_gain() == 1.0);
    }

    #[test]
    fn drift_gain_is_seeded_and_bounded() {
        let collect =
            |plan: &FaultPlan| -> Vec<f64> { (0..200).map(|_| plan.input_drift_gain()).collect() };
        let a = FaultPlan::seeded(21).with_input_drift(0.5, 2.0);
        let b = FaultPlan::seeded(21).with_input_drift(0.5, 2.0);
        assert_eq!(collect(&a), collect(&b), "same seed, same drift stream");
        a.reset();
        let replay = collect(&a);
        let mut drifted = 0;
        for g in &replay {
            if *g == 1.0 {
                continue;
            }
            drifted += 1;
            assert!((2.0..=3.0).contains(g), "gain {g} outside [1+m/2, 1+m]");
        }
        assert!((50..150).contains(&drifted), "drifted {drifted}/200");
        let c = FaultPlan::seeded(22).with_input_drift(0.5, 2.0);
        assert_ne!(replay, collect(&c), "different seed, different stream");
    }

    #[test]
    fn inert_system_drift_is_exactly_identity() {
        let plan = FaultPlan::none();
        for _ in 0..100 {
            assert!(plan.throttle_factor() == 1.0);
            assert!(plan.bandwidth_factor() == 1.0);
            assert!(!plan.device_lost());
        }
        // Depth zero keeps the curve kinds inert even with positive rates.
        let rate_only = FaultPlan::seeded(5)
            .with_throttle(1.0, 0.0)
            .with_bandwidth_drop(1.0, 0.0);
        assert!(rate_only.is_inert());
        assert!(rate_only.throttle_factor() == 1.0);
        assert!(rate_only.bandwidth_factor() == 1.0);
    }

    #[test]
    fn drift_kinds_are_seeded_and_bounded() {
        let collect = |plan: &FaultPlan| -> (Vec<f64>, Vec<f64>, Vec<bool>) {
            (
                (0..200).map(|_| plan.throttle_factor()).collect(),
                (0..200).map(|_| plan.bandwidth_factor()).collect(),
                (0..200).map(|_| plan.device_lost()).collect(),
            )
        };
        let build = |seed: u64| {
            FaultPlan::seeded(seed)
                .with_throttle(0.5, 0.4)
                .with_bandwidth_drop(0.5, 0.6)
                .with_device_loss(0.3)
        };
        let (ta, ba, la) = collect(&build(21));
        let (tb, bb, lb) = collect(&build(21));
        assert_eq!(ta, tb, "same seed, same throttle stream");
        assert_eq!(ba, bb, "same seed, same bandwidth stream");
        assert_eq!(la, lb, "same seed, same loss stream");
        for t in ta.iter().filter(|t| **t != 1.0) {
            assert!((0.6..=0.8).contains(t), "throttle {t} outside [1-d, 1-d/2]");
        }
        for b in ba.iter().filter(|b| **b != 1.0) {
            assert!(
                (0.4..=0.7).contains(b),
                "bandwidth {b} outside [1-d, 1-d/2]"
            );
        }
        let lost = la.iter().filter(|l| **l).count();
        assert!((30..100).contains(&lost), "lost {lost}/200");
        let (tc, bc, lc) = collect(&build(22));
        assert!(ta != tc || ba != bc || la != lc, "seeds must decorrelate");
    }

    #[test]
    fn inert_overload_never_bursts() {
        let plan = FaultPlan::none();
        for _ in 0..100 {
            assert_eq!(plan.overload_burst(), 0);
        }
        // Size zero keeps the kind inert even with a positive rate.
        let rate_only = FaultPlan::seeded(5).with_overload_burst(1.0, 0);
        assert!(rate_only.is_inert());
        assert_eq!(rate_only.overload_burst(), 0);
    }

    #[test]
    fn overload_bursts_are_seeded_and_bounded() {
        let collect =
            |plan: &FaultPlan| -> Vec<u64> { (0..200).map(|_| plan.overload_burst()).collect() };
        let a = FaultPlan::seeded(17).with_overload_burst(0.4, 6);
        let b = FaultPlan::seeded(17).with_overload_burst(0.4, 6);
        let stream = collect(&a);
        assert_eq!(stream, collect(&b), "same seed, same burst stream");
        let mut bursts = 0;
        for extra in &stream {
            if *extra == 0 {
                continue;
            }
            bursts += 1;
            assert!((1..=6).contains(extra), "burst {extra} outside [1, size]");
        }
        assert!((40..120).contains(&bursts), "burst slots {bursts}/200");
        let c = FaultPlan::seeded(18).with_overload_burst(0.4, 6);
        assert_ne!(stream, collect(&c), "seeds must decorrelate");
    }

    #[test]
    fn crash_point_fires_exactly_once_at_its_boundary() {
        let crash = CrashPoint::at(3);
        let fires: Vec<bool> = (0..6).map(|_| crash.observe_trial()).collect();
        assert_eq!(fires, [false, false, true, false, false, false]);
        assert_eq!(crash.observed(), 6);
        // Disarmed (boundary 0) never fires and never counts as armed.
        let off = CrashPoint::at(0);
        assert!((0..10).all(|_| !off.observe_trial()));
    }

    #[test]
    fn crash_point_clones_share_the_counter() {
        let a = CrashPoint::at(4);
        let b = a.clone();
        let mut fired = 0;
        for _ in 0..2 {
            if a.observe_trial() {
                fired += 1;
            }
            if b.observe_trial() {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "the shared counter fires exactly once");
        assert_eq!(a.observed(), 4);
    }

    #[test]
    fn seeded_crash_points_are_deterministic_and_in_range() {
        for seed in 0..200u64 {
            let a = CrashPoint::seeded(seed, 12);
            let b = CrashPoint::seeded(seed, 12);
            assert_eq!(a.boundary(), b.boundary());
            assert_eq!(a.tear(), b.tear());
            assert!((1..=12).contains(&a.boundary()), "{}", a.boundary());
            match a.tear() {
                TearMode::Clean => {}
                TearMode::Truncate { bytes } | TearMode::Garbage { bytes } => {
                    assert!((1..=36).contains(&bytes), "{bytes}");
                }
            }
        }
        // All three tear modes occur across seeds.
        let modes: Vec<TearMode> = (0..64).map(|s| CrashPoint::seeded(s, 5).tear()).collect();
        assert!(modes.iter().any(|m| matches!(m, TearMode::Clean)));
        assert!(modes.iter().any(|m| matches!(m, TearMode::Truncate { .. })));
        assert!(modes.iter().any(|m| matches!(m, TearMode::Garbage { .. })));
        // Boundaries spread across the range rather than clumping.
        let boundaries: std::collections::HashSet<u64> = (0..64)
            .map(|s| CrashPoint::seeded(s, 12).boundary())
            .collect();
        assert!(boundaries.len() > 6, "{boundaries:?}");
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let plan = FaultPlan::seeded(9)
            .with_transfer_failures(0.1)
            .with_clock_noise(0.05)
            .with_input_drift(0.2, 1.5);
        let mut out = String::new();
        serde::Serialize::serialize(&plan, &mut out);
        let v = serde::json::parse(&out).unwrap();
        let back: FaultPlan = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(plan, back);
        // Missing field (old snapshots) deserializes to the inert plan.
        let missing: FaultPlan = serde::Deserialize::missing("faults").unwrap();
        assert!(missing.is_inert());
    }
}
