//! Seeded arrival traces. A trace is the serving session's entire
//! schedule, fixed up front in virtual time: worker threads never race
//! the clock, they race through a list — which is what makes per-request
//! outcomes a pure function of `(seed, trace, policy)` and therefore
//! bit-identical at any worker count.

use prescaler_faults::FaultPlan;
use prescaler_sim::SimTime;

/// Salt mixed into the fault-plan fork that drives overload bursts, so a
/// trace never advances (or depends on) the serving session's streams.
const BURST_FORK_SALT: u64 = 0x5E2B_E515_7261_CE00;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `(0, 1]` — never zero, so `ln` stays finite.
fn unit_open(bits: u64) -> f64 {
    (((bits >> 11) + 1) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// One request in an arrival trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Request {
    /// Arrival-order index, the request's identity (and its fault-stream
    /// fork salt) for the whole session.
    pub id: u64,
    /// Virtual arrival time.
    pub arrival: SimTime,
    /// Whether this request is an extra injected by an
    /// [`prescaler_faults::FaultKind::OverloadBurst`] spike rather than a
    /// base arrival.
    pub burst_extra: bool,
}

/// A seeded, replayable arrival schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrivalTrace {
    /// Requests in arrival order (ties broken by id).
    pub requests: Vec<Request>,
    /// The seed the trace was generated from.
    pub seed: u64,
}

impl ArrivalTrace {
    /// Generates a trace of `base` arrivals with exponential interarrival
    /// gaps of the given mean, then lets the fault plan's
    /// `OverloadBurst` stream inject extra same-instant arrivals after
    /// each base one. The plan is forked first, so generating a trace
    /// draws nothing from the serving session's own fault streams, and
    /// the same `(seed, base, mean, fault config)` always yields the same
    /// trace. With bursts disabled the trace has exactly `base` requests.
    #[must_use]
    pub fn generate(
        seed: u64,
        base: usize,
        mean_interarrival: SimTime,
        faults: &FaultPlan,
    ) -> ArrivalTrace {
        let bursts = faults.fork(BURST_FORK_SALT ^ seed);
        let mut state = splitmix64(seed ^ 0xA1EA_11A7_0F15_E3D5);
        let mut requests = Vec::with_capacity(base);
        let mut t = SimTime::ZERO;
        let mut id = 0u64;
        for _ in 0..base {
            state = splitmix64(state);
            let gap = -mean_interarrival.as_secs() * unit_open(state).ln();
            t += SimTime::from_secs(gap);
            requests.push(Request {
                id,
                arrival: t,
                burst_extra: false,
            });
            id += 1;
            // An arrival spike: the burst's extras land at the same
            // virtual instant, pressuring the admission queue.
            for _ in 0..bursts.overload_burst() {
                requests.push(Request {
                    id,
                    arrival: t,
                    burst_extra: true,
                });
                id += 1;
            }
        }
        ArrivalTrace { requests, seed }
    }

    /// Total requests, burst extras included.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace holds no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Requests injected by overload bursts.
    #[must_use]
    pub fn burst_extras(&self) -> usize {
        self.requests.iter().filter(|r| r.burst_extra).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_sorted() {
        let plan = FaultPlan::seeded(9).with_overload_burst(0.5, 4);
        let a = ArrivalTrace::generate(7, 40, SimTime::from_millis(5.0), &plan);
        let b = ArrivalTrace::generate(7, 40, SimTime::from_millis(5.0), &plan);
        assert_eq!(a, b, "same inputs, same trace");
        for w in a.requests.windows(2) {
            assert!(w[0].arrival <= w[1].arrival, "arrivals must be ordered");
            assert_eq!(w[0].id + 1, w[1].id, "ids are dense in arrival order");
        }
        assert!(a.burst_extras() > 0, "rate 0.5 over 40 slots must spike");
        let c = ArrivalTrace::generate(8, 40, SimTime::from_millis(5.0), &plan);
        assert_ne!(a, c, "a different seed moves the schedule");
    }

    #[test]
    fn inert_plan_injects_no_extras() {
        let plan = FaultPlan::none();
        let trace = ArrivalTrace::generate(3, 25, SimTime::from_millis(2.0), &plan);
        assert_eq!(trace.len(), 25);
        assert_eq!(trace.burst_extras(), 0);
    }

    #[test]
    fn trace_generation_leaves_the_plan_untouched() {
        let plan = FaultPlan::seeded(5).with_overload_burst(1.0, 3);
        let before = plan.overload_burst();
        // Regenerate from a fresh identically-seeded plan: if generate()
        // advanced the parent's counters, this draw would differ.
        let plan2 = FaultPlan::seeded(5).with_overload_burst(1.0, 3);
        let _ = ArrivalTrace::generate(1, 100, SimTime::from_millis(1.0), &plan2);
        assert_eq!(before, plan2.overload_burst());
    }
}
