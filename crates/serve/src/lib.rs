//! Overload-safe concurrent serving for guarded PreScaler sessions.
//!
//! The tuner certifies a [`prescaler_ocl::ScalingSpec`] once; the guard
//! (`prescaler-guard`) keeps its quality honest run by run. This crate
//! adds the layer above both: a **serving front-end** that takes a
//! seeded arrival trace and pushes it through a shared guarded session
//! with production semantics —
//!
//! * **Bounded admission with typed backpressure.** A fixed-capacity
//!   waiting queue; an arrival that finds it full is rejected with
//!   [`ServeError::QueueFull`]. Overload can never grow memory without
//!   bound or silently drop a request — every request's fate is a typed
//!   per-request outcome.
//! * **Deadline budgets on the virtual timeline.** Each request carries
//!   a completion budget from its arrival instant; a request whose queue
//!   wait plus predicted service time cannot fit is shed *before launch*
//!   with [`ServeError::DeadlineExceeded`]. Canary/verify runs execute
//!   on the clean twin of the system — a different logical device — so
//!   an in-flight canary never blocks the queue past a budget.
//! * **Shed work, never quality.** Every admitted request is served
//!   through the full guard: TOQ-or-fallback semantics always hold.
//!   Sustained shedding reports overload to the guard
//!   ([`prescaler_guard::Guard::report_overload`]), raising its
//!   revalidation request — precision is never demoted to buy
//!   throughput.
//! * **Deterministic replay at any worker count.** Worker threads are
//!   physical parallelism only: they execute requests speculatively from
//!   per-request forked fault streams (the `TrialEngine` trick extended
//!   to serving) and a sequential virtual-time sweep replays every
//!   decision. The same `(seed, trace, policy)` yields bit-identical
//!   per-request outcomes at 1, 2, or 8 workers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod server;
mod trace;

pub use error::ServeError;
pub use server::{
    output_digest, spec_digest, RequestOutcome, ServeConfig, ServeRun, ServedRequest, Server,
};
pub use trace::{ArrivalTrace, Request};
