//! The serving front-end: bounded admission, deadline budgets, load
//! shedding, and a speculative multi-worker execution pool over a shared
//! guarded session.
//!
//! # Determinism
//!
//! The simulated system has **one** device, so admission, queueing and
//! deadline semantics are computed by a sequential discrete-event sweep
//! over the arrival trace in virtual time — the single logical service
//! line. Worker threads are pure *physical* parallelism: they execute
//! requests speculatively ([`prescaler_guard::speculate`] is a pure
//! function of the forked fault stream and the active spec) and the
//! sweep replays each speculation through [`Guard::run_forked`], which
//! reuses it only if its assumptions still hold. Outcomes therefore
//! depend only on `(seed, trace, config policy)` — never on the worker
//! count — which is what the cross-worker-count bit-identity tests pin.
//!
//! # Shedding policy
//!
//! Overload sheds *work*, never *quality*: a rejected request gets a
//! typed [`ServeError`]; an admitted request always runs under the full
//! guard (TOQ-or-fallback). Sustained shedding raises the guard's
//! revalidation machinery ([`Guard::report_overload`]) instead of
//! demoting precision to buy throughput.

use crate::error::ServeError;
use crate::trace::ArrivalTrace;
use prescaler_core::report::{ServeReport, ServeSummary};
use prescaler_core::SpecSnapshot;
use prescaler_guard::{speculate, Guard, PreparedRun, SharedGuard};
use prescaler_ocl::{HostApp, OclError, Outputs, ScalingSpec};
use prescaler_sim::SimTime;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Admission and scheduling policy of a serving session.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeConfig {
    /// Bound on requests waiting for the device. An arrival that finds
    /// the waiting room at capacity is rejected
    /// [`ServeError::QueueFull`] — queue memory is bounded by
    /// construction, overload can only produce rejections.
    pub queue_capacity: usize,
    /// Per-request completion budget, charged against the virtual
    /// timeline from arrival: queue wait plus on-device service time
    /// must fit inside it or the request is shed before launch.
    pub deadline: SimTime,
    /// Physical worker threads executing requests speculatively. Affects
    /// wall-clock only; per-request outcomes are invariant to it.
    pub workers: usize,
    /// After this many load-shedding rejections (queue-full plus
    /// deadline), the session reports sustained overload to the guard,
    /// raising its revalidation request. `0` disables the signal.
    pub overload_shed_tolerance: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 8,
            deadline: SimTime::from_secs(1.0),
            workers: 1,
            overload_shed_tolerance: 0,
        }
    }
}

impl ServeConfig {
    /// A config with the given worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers;
        self
    }
}

/// The record of one request served to completion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServedRequest {
    /// The request's trace id.
    pub id: u64,
    /// Virtual arrival time.
    pub arrival: SimTime,
    /// Virtual time service began (arrival, or when the device freed).
    pub started: SimTime,
    /// Virtual completion time.
    pub completed: SimTime,
    /// Whether the run served a degraded (demoted or fallback) config.
    pub degraded: bool,
    /// Canary-scored quality of the run, when one was taken.
    pub canary_quality: Option<f64>,
    /// Canonical digest of the configuration in effect when the run
    /// completed (the spec served, after any same-run fallback).
    pub spec_digest: u64,
    /// Digest of the run's host-visible output bits.
    pub output_digest: u64,
}

/// The outcome of one request: served, or rejected with a typed error.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestOutcome {
    /// The request's trace id.
    pub id: u64,
    /// Virtual arrival time.
    pub arrival: SimTime,
    /// Served record, or the typed rejection.
    pub result: Result<ServedRequest, ServeError>,
}

/// Everything a serving session produced: the per-request outcome rows
/// (arrival order) and the aggregate report.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeRun {
    /// Per-request outcomes in arrival order.
    pub outcomes: Vec<RequestOutcome>,
    /// Aggregate counters, guard summary, and the outcome digest.
    pub report: ServeReport,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv1a_u64(h: u64, v: u64) -> u64 {
    fnv1a_bytes(h, &v.to_le_bytes())
}

/// Canonical digest of a scaling spec (via its sorted snapshot form, so
/// equal specs always digest equally).
#[must_use]
pub fn spec_digest(spec: &ScalingSpec) -> u64 {
    let json = serde_json::to_string(&SpecSnapshot::of(spec)).unwrap_or_default();
    fnv1a_bytes(FNV_OFFSET, json.as_bytes())
}

/// Digest of an output set's exact bit patterns.
#[must_use]
pub fn output_digest(outputs: &Outputs) -> u64 {
    let mut h = FNV_OFFSET;
    for (label, data) in outputs {
        h = fnv1a_bytes(h, label.as_bytes());
        for i in 0..data.len() {
            h = fnv1a_u64(h, data.get(i).to_bits());
        }
    }
    h
}

/// A multi-worker serving front-end over one guarded session.
pub struct Server {
    guard: SharedGuard,
    config: ServeConfig,
}

impl Server {
    /// Wraps a guard for serving under `config`.
    #[must_use]
    pub fn new(guard: Guard, config: ServeConfig) -> Server {
        Server {
            guard: SharedGuard::new(guard),
            config,
        }
    }

    /// The shared guard handle (for inspection or revalidation turns).
    #[must_use]
    pub fn guard(&self) -> &SharedGuard {
        &self.guard
    }

    /// The session's config.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Serves an arrival trace to completion and returns every
    /// per-request outcome plus the aggregate report.
    ///
    /// Phase 1 fans the trace out to `config.workers` threads that
    /// execute each request speculatively against a snapshot of the
    /// active configuration. Phase 2 sweeps the trace once in arrival
    /// order, making every admission/deadline/shedding decision on the
    /// virtual timeline and replaying the speculations through the
    /// guard — reusing a speculation only when its assumptions held, so
    /// a stale or missing (or panicked-away) speculation merely costs a
    /// recompute, never a different outcome.
    pub fn serve<A: HostApp>(
        &self,
        trace: &ArrivalTrace,
        app_at: impl Fn(f64) -> A + Sync,
    ) -> ServeRun {
        let n = trace.len();
        let slots = self.speculate_all(trace, &app_at);
        let mut summary = ServeSummary {
            arrivals: n as u64,
            ..ServeSummary::default()
        };
        let mut outcomes = Vec::with_capacity(n);
        let mut digest = FNV_OFFSET;
        let mut device_free = SimTime::ZERO;
        // Start times of admitted requests that are still waiting for the
        // device — the bounded admission queue. Its length never exceeds
        // `queue_capacity`: that is checked *before* every admission.
        let mut waiting: VecDeque<SimTime> = VecDeque::new();
        let mut shutting_down = false;

        for (i, req) in trace.requests.iter().enumerate() {
            let t = req.arrival;
            while waiting.front().is_some_and(|&s| s <= t) {
                waiting.pop_front();
            }

            let result = if shutting_down {
                Err(ServeError::ShuttingDown)
            } else if waiting.len() >= self.config.queue_capacity {
                Err(ServeError::QueueFull)
            } else {
                self.admit(req.id, t, device_free, &slots[i], &app_at)
            };

            match &result {
                Ok(served) => {
                    summary.served += 1;
                    summary.busy_secs += (served.completed - served.started).as_secs();
                    summary.makespan_secs = served.completed.as_secs();
                    if served.degraded {
                        summary.degraded_served += 1;
                    }
                    device_free = served.completed;
                    if served.started > t {
                        waiting.push_back(served.started);
                    }
                    summary.peak_queue_depth = summary.peak_queue_depth.max(waiting.len() as u64);
                }
                Err(ServeError::QueueFull) => summary.shed_queue_full += 1,
                Err(ServeError::DeadlineExceeded) => summary.shed_deadline += 1,
                Err(ServeError::ShuttingDown) => summary.shed_shutdown += 1,
                Err(ServeError::DeviceLost) => {
                    summary.failed_device_lost += 1;
                    // Fatal: drain the session. Everything still queued or
                    // yet to arrive is rejected with a typed error.
                    shutting_down = true;
                }
            }

            // Sustained overload: shed work, never quality — tell the
            // guard to demand a system-aware re-tune (raised once).
            let sheds = summary.shed_queue_full + summary.shed_deadline;
            if self.config.overload_shed_tolerance > 0
                && sheds >= self.config.overload_shed_tolerance
                && !summary.overload_revalidation
            {
                self.guard.with(Guard::report_overload);
                summary.overload_revalidation = true;
            }

            digest = fnv1a_u64(digest, req.id);
            digest = match &result {
                Ok(s) => {
                    let h = fnv1a_u64(digest, 0);
                    let h = fnv1a_u64(h, s.spec_digest);
                    let h = fnv1a_u64(h, s.output_digest);
                    let h = fnv1a_u64(h, s.started.as_secs().to_bits());
                    let h = fnv1a_u64(h, s.completed.as_secs().to_bits());
                    let h = fnv1a_u64(h, u64::from(s.degraded));
                    fnv1a_u64(h, s.canary_quality.map_or(u64::MAX, f64::to_bits))
                }
                Err(e) => fnv1a_u64(digest, u64::from(e.tag())),
            };
            outcomes.push(RequestOutcome {
                id: req.id,
                arrival: t,
                result,
            });
        }

        let report = ServeReport {
            summary,
            guard: self.guard.summary(),
            outcome_digest: digest,
            workers: self.config.workers.max(1) as u64,
            seed: trace.seed,
        };
        ServeRun { outcomes, report }
    }

    /// Phase 1: speculative parallel execution of the whole trace
    /// against a snapshot of the active configuration.
    fn speculate_all<A: HostApp>(
        &self,
        trace: &ArrivalTrace,
        app_at: &(impl Fn(f64) -> A + Sync),
    ) -> Vec<Mutex<Option<PreparedRun>>> {
        let n = trace.len();
        let snapshot = self.guard.active_spec();
        let system = self.guard.with(|g| g.system().clone());
        let slots: Vec<Mutex<Option<PreparedRun>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.config.workers.max(1);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(req) = trace.requests.get(i) else {
                            break;
                        };
                        let prep = speculate(&system, &snapshot, req.id, app_at);
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(prep);
                    })
                })
                .collect();
            for h in handles {
                // A panicked worker forfeits its remaining slots; the
                // replay recomputes them inline and the pool keeps going.
                let _ = h.join();
            }
        });
        slots
    }

    /// Deadline admission plus guarded execution of one request.
    fn admit<A: HostApp>(
        &self,
        id: u64,
        arrival: SimTime,
        device_free: SimTime,
        slot: &Mutex<Option<PreparedRun>>,
        app_at: &impl Fn(f64) -> A,
    ) -> Result<ServedRequest, ServeError> {
        // Validate the speculation against the *current* active spec; a
        // breaker may have moved it since the snapshot was taken.
        let prep = {
            let taken = slot.lock().unwrap_or_else(PoisonError::into_inner).take();
            let active = self.guard.active_spec();
            match taken {
                Some(p) if p.spec == active => p,
                _ => self
                    .guard
                    .with(|g| speculate(g.system(), g.active_spec(), id, app_at)),
            }
        };

        let started = arrival.max(device_free);
        // Deadline budget on the virtual timeline: queue wait plus the
        // predicted production service time must fit. The canary a run
        // may trigger executes on the clean twin — a different logical
        // device — so it never occupies the queue's device or counts
        // against any request's budget. For a run that will fail
        // (service time unknowable) the wait alone decides.
        let budget_end = arrival + self.config.deadline;
        let predicted = prep
            .result
            .as_ref()
            .ok()
            .map(|(_, log)| log.timeline.total());
        let misses = match predicted {
            Some(s) => started + s > budget_end,
            None => started > budget_end,
        };
        if misses {
            return Err(ServeError::DeadlineExceeded);
        }

        match self.guard.with(|g| g.run_forked(id, app_at, Some(prep))) {
            Ok(v) => {
                let sd = spec_digest(&self.guard.active_spec());
                Ok(ServedRequest {
                    id,
                    arrival,
                    started,
                    completed: started + v.timeline.total(),
                    degraded: v.degraded,
                    canary_quality: v.canary_quality,
                    spec_digest: sd,
                    output_digest: output_digest(&v.outputs),
                })
            }
            // The device died serving this request — or the guard's
            // last-resort baseline retry died too, which means the
            // runtime cannot serve at all: either way the session is
            // over. The triggering request reports the loss; the caller
            // drains the rest as `ShuttingDown`.
            Err(OclError::DeviceLost { .. }) | Err(_) => Err(ServeError::DeviceLost),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ArrivalTrace;
    use prescaler_faults::FaultPlan;
    use prescaler_guard::GuardPolicy;
    use prescaler_ir::Precision;
    use prescaler_polybench::{BenchKind, Dims, InputSet, PolyApp};
    use prescaler_sim::SystemModel;

    fn gemm_app() -> PolyApp {
        PolyApp::new(BenchKind::Gemm, Dims::square(12), InputSet::Random, 7)
    }

    fn half_spec() -> ScalingSpec {
        let mut spec = ScalingSpec::baseline();
        for label in ["A", "B", "C"] {
            spec = spec.with_target(label, Precision::Half);
        }
        spec
    }

    fn guard_on(system: &SystemModel) -> Guard {
        Guard::new(&gemm_app(), system, half_spec(), GuardPolicy::default()).unwrap()
    }

    /// Service time of one clean request on system1's device, measured.
    fn service_secs(system: &SystemModel) -> f64 {
        let prep = speculate(system, &half_spec(), 0, |g| gemm_app().with_input_gain(g));
        prep.result.unwrap().1.timeline.total().as_secs()
    }

    #[test]
    fn outcomes_are_invariant_to_worker_count() {
        let plan = FaultPlan::seeded(41).with_input_drift(0.3, 2.0);
        let system = SystemModel::system1().with_faults(plan);
        let s = service_secs(&system);
        let trace = ArrivalTrace::generate(41, 20, SimTime::from_secs(s * 0.8), &system.faults);
        let mut runs = Vec::new();
        for workers in [1usize, 2, 8] {
            let config = ServeConfig {
                queue_capacity: 3,
                deadline: SimTime::from_secs(s * 4.0),
                workers,
                overload_shed_tolerance: 0,
            };
            let server = Server::new(guard_on(&system), config);
            runs.push(server.serve(&trace, |g| gemm_app().with_input_gain(g)));
        }
        assert_eq!(runs[0].outcomes, runs[1].outcomes, "1 vs 2 workers");
        assert_eq!(runs[0].outcomes, runs[2].outcomes, "1 vs 8 workers");
        assert_eq!(runs[0].report.outcome_digest, runs[2].report.outcome_digest);
        assert_eq!(runs[0].report.summary, runs[2].report.summary);
    }

    #[test]
    fn every_arrival_is_accounted_and_queue_stays_bounded() {
        let system = SystemModel::system1();
        let s = service_secs(&system);
        // Arrivals ~5x faster than service: sustained pressure.
        let trace = ArrivalTrace::generate(3, 30, SimTime::from_secs(s / 5.0), &system.faults);
        let config = ServeConfig {
            queue_capacity: 2,
            deadline: SimTime::from_secs(s * 100.0),
            workers: 2,
            overload_shed_tolerance: 0,
        };
        let server = Server::new(guard_on(&system), config);
        let run = server.serve(&trace, |g| gemm_app().with_input_gain(g));
        let sum = &run.report.summary;
        assert_eq!(sum.arrivals, 30);
        assert_eq!(sum.accounted(), sum.arrivals, "no silent drops");
        assert!(sum.shed_queue_full > 0, "pressure must shed: {sum:?}");
        assert!(sum.served > 0, "the device still serves at capacity");
        assert!(
            sum.peak_queue_depth <= config.queue_capacity as u64,
            "queue bound violated: {} > {}",
            sum.peak_queue_depth,
            config.queue_capacity
        );
    }

    #[test]
    fn hopeless_deadlines_shed_before_launch() {
        let system = SystemModel::system1();
        let s = service_secs(&system);
        let trace = ArrivalTrace::generate(5, 10, SimTime::from_secs(s * 2.0), &system.faults);
        // Half a service time of budget: nothing can ever finish.
        let config = ServeConfig {
            queue_capacity: 4,
            deadline: SimTime::from_secs(s * 0.5),
            workers: 2,
            overload_shed_tolerance: 0,
        };
        let server = Server::new(guard_on(&system), config);
        let run = server.serve(&trace, |g| gemm_app().with_input_gain(g));
        let sum = &run.report.summary;
        assert_eq!(sum.served, 0);
        assert_eq!(sum.shed_deadline, 10, "all shed before launch: {sum:?}");
        assert_eq!(server.guard().summary().runs, 0, "nothing launched");
    }

    #[test]
    fn device_loss_fails_the_request_and_drains_the_session() {
        let plan = FaultPlan::seeded(2).with_device_loss(1.0);
        let system = SystemModel::system1().with_faults(plan);
        let clean = SystemModel::system1();
        let s = service_secs(&clean);
        let trace = ArrivalTrace::generate(2, 6, SimTime::from_secs(s), &system.faults);
        let server = Server::new(
            guard_on(&system),
            ServeConfig {
                deadline: SimTime::from_secs(s * 50.0),
                ..ServeConfig::default()
            },
        );
        let run = server.serve(&trace, |g| gemm_app().with_input_gain(g));
        assert_eq!(
            run.outcomes[0].result,
            Err(ServeError::DeviceLost),
            "the first admitted request reports the loss"
        );
        for o in &run.outcomes[1..] {
            assert_eq!(o.result, Err(ServeError::ShuttingDown));
        }
        assert!(
            server.guard().revalidation_due(),
            "loss demands revalidation"
        );
    }

    #[test]
    fn sustained_shedding_reports_overload_not_demotion() {
        let burst = FaultPlan::seeded(6).with_overload_burst(1.0, 4);
        let system = SystemModel::system1().with_faults(burst);
        let s = service_secs(&SystemModel::system1());
        let trace = ArrivalTrace::generate(6, 12, SimTime::from_secs(s * 0.5), &system.faults);
        assert!(trace.burst_extras() > 0, "burst plan must spike the trace");
        let config = ServeConfig {
            queue_capacity: 1,
            deadline: SimTime::from_secs(s * 3.0),
            workers: 2,
            overload_shed_tolerance: 3,
        };
        let server = Server::new(guard_on(&system), config);
        let run = server.serve(&trace, |g| gemm_app().with_input_gain(g));
        let sum = &run.report.summary;
        assert!(
            sum.shed() >= 3,
            "burst against capacity 1 must shed: {sum:?}"
        );
        assert!(sum.overload_revalidation);
        assert!(server.guard().revalidation_due());
        assert_eq!(
            run.report.guard.demotions, 0,
            "overload must never demote precision"
        );
        // Every admitted request still got full guard semantics.
        for o in &run.outcomes {
            if let Ok(served) = &o.result {
                if let Some(q) = served.canary_quality {
                    assert!(q >= 0.9 || run.report.guard.fallback, "TOQ-or-fallback");
                }
            }
        }
    }
}
