//! The typed rejection taxonomy of the serving front-end. Overload
//! produces one of these — explicitly, per request — never a silent drop.

use std::fmt;

/// Why a request was not served. Every request the front-end does not
/// serve to completion carries exactly one of these; callers can always
/// distinguish "the system chose to shed you" from "the device died".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServeError {
    /// The bounded admission queue was at capacity when the request
    /// arrived. The request was rejected at the door; no state changed.
    QueueFull,
    /// Admission control determined the request could not finish inside
    /// its deadline budget (queue wait plus predicted service time on the
    /// virtual timeline) and shed it before launch.
    DeadlineExceeded,
    /// The session is draining — a prior fatal failure or an explicit
    /// shutdown — so no new work is admitted.
    ShuttingDown,
    /// The device was lost while serving this request. Fatal for the
    /// session: subsequent requests are rejected [`ServeError::ShuttingDown`].
    DeviceLost,
}

impl ServeError {
    /// True for rejections that are load-shedding policy decisions
    /// (admission or deadline or drain), as opposed to a device failure.
    #[must_use]
    pub fn is_shed(self) -> bool {
        !matches!(self, ServeError::DeviceLost)
    }

    /// Stable one-byte tag used by outcome digests.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            ServeError::QueueFull => 1,
            ServeError::DeadlineExceeded => 2,
            ServeError::ShuttingDown => 3,
            ServeError::DeviceLost => 4,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "admission queue full"),
            ServeError::DeadlineExceeded => write!(f, "deadline budget cannot be met"),
            ServeError::ShuttingDown => write!(f, "session shutting down"),
            ServeError::DeviceLost => write!(f, "device lost mid-service"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shedding_is_policy_device_loss_is_not() {
        assert!(ServeError::QueueFull.is_shed());
        assert!(ServeError::DeadlineExceeded.is_shed());
        assert!(ServeError::ShuttingDown.is_shed());
        assert!(!ServeError::DeviceLost.is_shed());
    }

    #[test]
    fn tags_are_distinct() {
        let tags = [
            ServeError::QueueFull.tag(),
            ServeError::DeadlineExceeded.tag(),
            ServeError::ShuttingDown.tag(),
            ServeError::DeviceLost.tag(),
        ];
        for (i, a) in tags.iter().enumerate() {
            for b in &tags[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
