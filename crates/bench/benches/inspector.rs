//! Benchmarks the one-time system inspection and database queries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use prescaler_core::SystemInspector;
use prescaler_ir::Precision;
use prescaler_sim::{Direction, SystemModel};

fn bench_inspect(c: &mut Criterion) {
    let system = SystemModel::system1();
    c.bench_function("inspector/inspect_system", |b| {
        b.iter(|| SystemInspector::inspect(black_box(&system)));
    });
}

fn bench_queries(c: &mut Criterion) {
    let db = SystemInspector::inspect(&SystemModel::system1());
    c.bench_function("inspector/best_plan_query", |b| {
        b.iter(|| {
            db.best_plan(
                Direction::HtoD,
                Precision::Double,
                Precision::Single,
                black_box(3 << 18),
                &Precision::ALL,
            )
        });
    });
}

criterion_group!(benches, bench_inspect, bench_queries);
criterion_main!(benches);
