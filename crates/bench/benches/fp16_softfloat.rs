//! Microbenchmarks of the binary16 softfloat — the hot inner loop of every
//! half-precision experiment.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use prescaler_fp16::F16;

fn bench_conversions(c: &mut Criterion) {
    let mut g = c.benchmark_group("fp16/convert");
    let xs: Vec<f64> = (0..4096).map(|i| (i as f64) * 0.37 - 700.0).collect();
    g.throughput(Throughput::Elements(xs.len() as u64));
    g.bench_function("f64_to_f16", |b| {
        b.iter(|| {
            let mut acc = 0u16;
            for &x in &xs {
                acc ^= F16::from_f64(black_box(x)).to_bits();
            }
            acc
        });
    });
    let hs: Vec<F16> = xs.iter().map(|&x| F16::from_f64(x)).collect();
    g.bench_function("f16_to_f64", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &h in &hs {
                acc += black_box(h).to_f64();
            }
            acc
        });
    });
    g.finish();
}

fn bench_arithmetic(c: &mut Criterion) {
    let mut g = c.benchmark_group("fp16/arith");
    let hs: Vec<F16> = (0..4096).map(|i| F16::from_f64(i as f64 * 0.01)).collect();
    g.throughput(Throughput::Elements(hs.len() as u64));
    g.bench_function("add_chain", |b| {
        b.iter(|| {
            let mut acc = F16::ZERO;
            for &h in &hs {
                acc += black_box(h);
            }
            acc
        });
    });
    g.bench_function("mul_add", |b| {
        b.iter(|| {
            let mut acc = F16::ZERO;
            for &h in &hs {
                acc = h.mul_add(black_box(h), acc);
            }
            acc
        });
    });
    g.finish();
}

criterion_group!(benches, bench_conversions, bench_arithmetic);
criterion_main!(benches);
