//! Benchmarks the conversion-method machinery: the Fig. 5 cost model
//! evaluation and the real multithreaded functional conversion.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prescaler_ir::{FloatVec, Precision};
use prescaler_sim::convert::convert_parallel;
use prescaler_sim::{Direction, HostMethod, SystemModel, TransferPlan};

fn bench_cost_model(c: &mut Criterion) {
    let system = SystemModel::system1();
    let plan = TransferPlan::host_scaled(
        Direction::HtoD,
        Precision::Double,
        Precision::Single,
        HostMethod::Pipelined {
            threads: 20,
            chunks: 8,
        },
    );
    c.bench_function("convert/cost_model_eval", |b| {
        b.iter(|| plan.time(&system, black_box(1 << 20)).total());
    });
}

fn bench_functional_conversion(c: &mut Criterion) {
    let mut g = c.benchmark_group("convert/functional");
    let data = FloatVec::from_f64_slice(
        &(0..1 << 16).map(|i| i as f64 * 0.1).collect::<Vec<_>>(),
        Precision::Double,
    );
    g.throughput(Throughput::Elements(data.len() as u64));
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("double_to_half", threads),
            &threads,
            |b, &t| b.iter(|| convert_parallel(black_box(&data), Precision::Half, t)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_cost_model, bench_functional_conversion);
criterion_main!(benches);
