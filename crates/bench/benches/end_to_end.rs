//! Benchmarks whole application runs under the interposition runtime —
//! the cost of one search trial per benchmark class.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prescaler_ocl::{run_app, ScalingSpec};
use prescaler_polybench::{BenchKind, InputSet, PolyApp};
use prescaler_sim::SystemModel;

fn bench_runs(c: &mut Criterion) {
    let system = SystemModel::system1();
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for kind in [BenchKind::Gemm, BenchKind::Atax, BenchKind::TwoDConv] {
        let app = PolyApp::scaled(kind, InputSet::Default, 0.1);
        g.bench_function(BenchmarkId::new("baseline_run", kind.name()), |b| {
            b.iter(|| run_app(&app, &system, &ScalingSpec::baseline()).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_runs);
criterion_main!(benches);
