//! Benchmarks the two kernel execution engines: the bytecode VM against
//! the reference tree-walking interpreter (the VM's raison d'être).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prescaler_ir::dsl::*;
use prescaler_ir::interp::{run_kernel, BufferMap, Launch};
use prescaler_ir::vm::{compile_kernel, VmScratch};
use prescaler_ir::{Access, FloatVec, Kernel, Precision};

fn gemm_kernel(n: i64) -> (Kernel, BufferMap, Launch) {
    let k = kernel("gemm")
        .buffer("a", Precision::Double, Access::Read)
        .buffer("b", Precision::Double, Access::Read)
        .buffer("c", Precision::Double, Access::Write)
        .int_param("n")
        .body(vec![
            let_("j", global_id(0)),
            let_("i", global_id(1)),
            let_acc("acc", "c", flit(0.0)),
            for_(
                "k",
                int(0),
                var("n"),
                vec![add_assign(
                    "acc",
                    load("a", var("i") * var("n") + var("k"))
                        * load("b", var("k") * var("n") + var("j")),
                )],
            ),
            store("c", var("i") * var("n") + var("j"), var("acc")),
        ]);
    let nn = n as usize;
    let mut bufs = BufferMap::new();
    let xs: Vec<f64> = (0..nn * nn).map(|i| (i as f64 * 0.001).sin()).collect();
    bufs.insert("a".into(), FloatVec::from_f64_slice(&xs, Precision::Double));
    bufs.insert("b".into(), FloatVec::from_f64_slice(&xs, Precision::Double));
    bufs.insert("c".into(), FloatVec::zeros(nn * nn, Precision::Double));
    let launch = Launch::two_d(nn, nn).arg_int("n", n);
    (k, bufs, launch)
}

fn bench_engines(c: &mut Criterion) {
    let n = 48i64;
    let (k, bufs, launch) = gemm_kernel(n);
    let flops = 2 * (n as u64).pow(3);
    let mut g = c.benchmark_group("engines/gemm48");
    g.throughput(Throughput::Elements(flops));
    g.sample_size(20);
    g.bench_function(BenchmarkId::new("vm", n), |b| {
        let compiled = compile_kernel(&k).unwrap();
        let mut scratch = VmScratch::new();
        b.iter_batched(
            || bufs.clone(),
            |mut m| {
                compiled
                    .run_with_scratch(&mut m, &launch, &mut scratch)
                    .unwrap()
            },
            criterion::BatchSize::LargeInput,
        );
    });
    for threads in [2usize, 4, 8] {
        g.bench_function(BenchmarkId::new("vm_parallel", threads), |b| {
            let compiled = compile_kernel(&k).unwrap();
            let mut scratch = VmScratch::new();
            b.iter_batched(
                || bufs.clone(),
                |mut m| {
                    compiled
                        .run_parallel(&mut m, &launch, &mut scratch, threads)
                        .unwrap()
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.bench_function(BenchmarkId::new("interpreter", n), |b| {
        b.iter_batched(
            || bufs.clone(),
            |mut m| run_kernel(&k, &mut m, &launch).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    let (k, _, _) = gemm_kernel(8);
    c.bench_function("engines/compile_gemm", |b| b.iter(|| compile_kernel(&k)));
}

criterion_group!(benches, bench_engines, bench_compile);
criterion_main!(benches);
