//! Benchmarks the decision maker end-to-end: the full tune pipeline on a
//! small GEMM (profiling + PFP seeding + per-object search + final run).

use criterion::{criterion_group, criterion_main, Criterion};
use prescaler_core::{PreScaler, SystemInspector};
use prescaler_polybench::{BenchKind, InputSet, PolyApp};
use prescaler_sim::SystemModel;

fn bench_tune(c: &mut Criterion) {
    let system = SystemModel::system1();
    let db = SystemInspector::inspect(&system);
    let app = PolyApp::scaled(BenchKind::Gemm, InputSet::Default, 0.08);
    let mut g = c.benchmark_group("search");
    g.sample_size(10);
    g.bench_function("tune_gemm_small", |b| {
        let tuner = PreScaler::new(&system, &db, 0.9);
        b.iter(|| tuner.tune(&app).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_tune);
criterion_main!(benches);
