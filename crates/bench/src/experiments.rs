//! One module-level function per paper table/figure. Each returns the
//! printed report as a string *and* writes a CSV next to it, so the
//! `figures` binary and the tests share one implementation.

use crate::suite::{
    aggregate_conversions, aggregate_types, geomean_speedup, run_suite, BenchResult, SuiteConfig,
};
use core::fmt::Write as _;
use prescaler_core::profile_app;
use prescaler_ir::Precision;
use prescaler_ocl::{run_app, HostApp, PlanChoice, ScalingSpec};
use prescaler_polybench::{output_quality, BenchKind, InputSet, PolyApp};
use prescaler_sim::gpu::{ComputeCapability, ThroughputTable};
use prescaler_sim::{Direction, HostMethod, SystemModel, TransferPlan};

/// Output of one experiment: a human-readable report and CSV rows.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Experiment id ("fig9", "table1", …).
    pub id: String,
    /// Formatted report.
    pub report: String,
    /// CSV content (with header).
    pub csv: String,
}

impl Experiment {
    /// Writes the CSV under `dir` as `<id>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        std::fs::write(&path, &self.csv)?;
        Ok(path)
    }
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

/// Table 1: native arithmetic throughput per compute capability.
#[must_use]
pub fn table1() -> Experiment {
    let mut report = String::from(
        "Table 1: throughput of native arithmetic (results/cycle/SM)\n\
         cc      FP16    FP32    FP64\n",
    );
    let mut csv = String::from("cc,fp16,fp32,fp64\n");
    for cc in ComputeCapability::ALL {
        let t = ThroughputTable::for_capability(cc);
        let h = t.fp16.map_or("N".to_owned(), |v| format!("{v:.0}"));
        let _ = writeln!(
            report,
            "{:<7} {:<7} {:<7} {:<7}",
            cc.version(),
            h,
            t.fp32,
            t.fp64
        );
        let _ = writeln!(csv, "{},{},{},{}", cc.version(), h, t.fp32, t.fp64);
    }
    Experiment {
        id: "table1".into(),
        report,
        csv,
    }
}

/// Table 3: the three target system configurations.
#[must_use]
pub fn table3() -> Experiment {
    let mut report = String::from("Table 3: target system configurations\n");
    let mut csv = String::from("system,cpu,cores,threads,simd,gpu,sms,cc,pcie,pcie_gbps\n");
    for s in SystemModel::paper_systems() {
        let _ = writeln!(
            report,
            "{}\n  CPU {} ({} cores / {} threads, {:?})\n  GPU {} ({} SMs, cc {})\n  {} ({:.1} GB/s effective)",
            s.name,
            s.cpu.name,
            s.cpu.cores,
            s.cpu.threads,
            s.cpu.simd,
            s.gpu.name,
            s.gpu.sms,
            s.gpu.compute_capability.version(),
            s.pcie.label(),
            s.pcie.effective_gbps(),
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{:?},{},{},{},{},{:.2}",
            s.name,
            s.cpu.name,
            s.cpu.cores,
            s.cpu.threads,
            s.cpu.simd,
            s.gpu.name,
            s.gpu.sms,
            s.gpu.compute_capability.version(),
            s.pcie.label(),
            s.pcie.effective_gbps(),
        );
    }
    Experiment {
        id: "table3".into(),
        report,
        csv,
    }
}

/// Table 4: benchmark input specification.
#[must_use]
pub fn table4() -> Experiment {
    let mut report = String::from(
        "Table 4: benchmark specification\nname      size_mb  default_range           category\n",
    );
    let mut csv = String::from("name,size_mb,range_lo,range_hi,compute_intensive\n");
    for k in BenchKind::ALL {
        let (lo, hi) = k.default_range();
        let cat = if k.compute_intensive() {
            "compute"
        } else {
            "data"
        };
        let _ = writeln!(
            report,
            "{:<9} {:<8} {:<23} {}",
            k.name(),
            k.paper_input_mb(),
            format!("{lo:.2}..{hi:.2}"),
            cat
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{}",
            k.name(),
            k.paper_input_mb(),
            lo,
            hi,
            k.compute_intensive()
        );
    }
    Experiment {
        id: "table4".into(),
        report,
        csv,
    }
}

// ---------------------------------------------------------------------------
// Figure 4: program categorization
// ---------------------------------------------------------------------------

/// Fig. 4: HtoD / kernel / DtoH fractions of the baseline run per
/// benchmark (System 1).
#[must_use]
pub fn fig4(scale: f64) -> Experiment {
    let system = SystemModel::system1();
    let mut report = String::from(
        "Figure 4: execution-time fractions (System 1, baseline)\n\
         name      HtoD   kernel DtoH   category\n",
    );
    let mut csv = String::from("name,htod,kernel,dtoh,compute_intensive\n");
    for kind in BenchKind::ALL {
        let app = PolyApp::scaled(kind, InputSet::Default, scale);
        let profile = profile_app(&app, &system).expect("baseline run");
        let tl = profile.log.timeline;
        let total = tl.total().as_secs().max(1e-30);
        let h = (tl.htod + tl.host_convert).as_secs() / total;
        let k = tl.kernel.as_secs() / total;
        let d = (tl.dtoh + tl.device_convert).as_secs() / total;
        let _ = writeln!(
            report,
            "{:<9} {:<6.2} {:<6.2} {:<6.2} {}",
            kind.name(),
            h,
            k,
            d,
            if kind.compute_intensive() {
                "compute"
            } else {
                "data"
            }
        );
        let _ = writeln!(
            csv,
            "{},{h:.4},{k:.4},{d:.4},{}",
            kind.name(),
            kind.compute_intensive()
        );
    }
    Experiment {
        id: "fig4".into(),
        report,
        csv,
    }
}

// ---------------------------------------------------------------------------
// Figure 5: conversion methods vs data size
// ---------------------------------------------------------------------------

/// Fig. 5: total {HtoD transfer + double→single scaling} time for each
/// method across array sizes, normalized to the single loop.
#[must_use]
pub fn fig5() -> Experiment {
    let system = SystemModel::system1();
    let threads = system.cpu.threads as usize;
    let methods: Vec<(&str, TransferPlan)> = vec![
        (
            "single_loop",
            TransferPlan::host_scaled(
                Direction::HtoD,
                Precision::Double,
                Precision::Single,
                HostMethod::Loop,
            ),
        ),
        (
            "multithread",
            TransferPlan::host_scaled(
                Direction::HtoD,
                Precision::Double,
                Precision::Single,
                HostMethod::Multithread { threads },
            ),
        ),
        (
            "device",
            TransferPlan::device_scaled(Direction::HtoD, Precision::Double, Precision::Single),
        ),
        (
            "pipelined",
            TransferPlan::host_scaled(
                Direction::HtoD,
                Precision::Double,
                Precision::Single,
                HostMethod::Pipelined { threads, chunks: 8 },
            ),
        ),
        (
            "transient_half",
            TransferPlan::transient(
                Direction::HtoD,
                Precision::Double,
                Precision::Half,
                Precision::Single,
                HostMethod::Multithread { threads },
            ),
        ),
    ];

    let mut report = String::from(
        "Figure 5: (HtoD + double->single scaling) time by method, normalized to single loop (System 1)\n",
    );
    let _ = writeln!(
        report,
        "{:<10} {}",
        "elems",
        methods
            .iter()
            .map(|(n, _)| format!("{n:<15}"))
            .collect::<String>()
    );
    let mut csv = String::from("elems,method,seconds,relative,best\n");

    for shift in [10usize, 12, 14, 16, 18, 20, 22, 24] {
        let elems = 1usize << shift;
        let times: Vec<f64> = methods
            .iter()
            .map(|(_, p)| p.time(&system, elems).total().as_secs())
            .collect();
        let base = times[0];
        let best_idx = (0..times.len())
            .filter(|&i| methods[i].0 != "transient_half")
            .min_by(|&a, &b| times[a].partial_cmp(&times[b]).expect("finite"))
            .expect("non-empty");
        let mut line = format!("{elems:<10} ");
        for (i, t) in times.iter().enumerate() {
            let mark = if i == best_idx { "*" } else { "" };
            let _ = write!(line, "{:<15}", format!("{:.3}{mark}", t / base));
            let _ = writeln!(
                csv,
                "{elems},{},{:.9},{:.4},{}",
                methods[i].0,
                t,
                t / base,
                i == best_idx
            );
        }
        let _ = writeln!(report, "{line}");
    }
    report.push_str("(* = best direct method per size)\n");
    Experiment {
        id: "fig5".into(),
        report,
        csv,
    }
}

// ---------------------------------------------------------------------------
// Figure 6: all-half quality per input set
// ---------------------------------------------------------------------------

/// Fig. 6: output quality when *every* memory object is half precision,
/// for the three input sets.
#[must_use]
pub fn fig6(scale: f64) -> Experiment {
    let system = SystemModel::system1();
    let mut report = String::from(
        "Figure 6: output quality with all memory objects in half precision\n\
         name      Default  Image    Random\n",
    );
    let mut csv = String::from("name,input,quality\n");
    for kind in BenchKind::ALL {
        let mut cells = Vec::new();
        for input in InputSet::ALL {
            let app = PolyApp::scaled(kind, input, scale);
            let (reference, _) =
                run_app(&app, &system, &ScalingSpec::baseline()).expect("baseline");
            let mut spec = ScalingSpec::baseline();
            for label in app
                .program()
                .kernels
                .iter()
                .flat_map(prescaler_ir::Kernel::buffer_names)
            {
                let _ = label;
            }
            // All objects → half with plain loop conversion.
            let profile = profile_app(&app, &system).expect("profile");
            for obj in &profile.scaling_order {
                spec = spec.with_target(&obj.label, Precision::Half);
                if obj.written {
                    spec = spec.with_write_plan(
                        &obj.label,
                        PlanChoice {
                            intermediate: Precision::Half,
                            host_method: HostMethod::Loop,
                        },
                    );
                }
                if obj.read_back {
                    spec = spec.with_read_plan(
                        &obj.label,
                        PlanChoice {
                            intermediate: Precision::Half,
                            host_method: HostMethod::Loop,
                        },
                    );
                }
            }
            let (outputs, _) = run_app(&app, &system, &spec).expect("all-half run");
            let q = output_quality(&reference, &outputs);
            cells.push(q);
            let _ = writeln!(csv, "{},{},{q:.4}", kind.name(), input.label());
        }
        let _ = writeln!(
            report,
            "{:<9} {:<8.3} {:<8.3} {:<8.3}",
            kind.name(),
            cells[0],
            cells[1],
            cells[2]
        );
    }
    report.push_str("(TOQ threshold: 0.9)\n");
    Experiment {
        id: "fig6".into(),
        report,
        csv,
    }
}

// ---------------------------------------------------------------------------
// Figures 9 & 10: main evaluation
// ---------------------------------------------------------------------------

fn suite_report(results: &[BenchResult], title: &str, csv: &mut String, system: &str) -> String {
    let mut report =
        format!("{title}\nname      technique  speedup quality trials time_ms kernel_ms\n");
    for r in results {
        for row in &r.rows {
            let _ = writeln!(
                report,
                "{:<9} {:<10} {:<7.3} {:<7.3} {:<6} {:<8.3} {:<8.3}",
                row.benchmark,
                row.technique,
                row.speedup,
                row.quality,
                row.trials,
                row.time_secs * 1e3,
                row.kernel_secs * 1e3,
            );
            let t = &row.types;
            let c = &row.conversions;
            let _ = writeln!(
                csv,
                "{system},{},{},{:.6},{:.6},{},{:.9},{:.9},{},{},{},{},{},{},{},{},{},{:.3e}",
                row.benchmark,
                row.technique,
                row.speedup,
                row.quality,
                row.trials,
                row.time_secs,
                row.kernel_secs,
                t.half,
                t.single,
                t.double,
                c.none,
                c.host_loop,
                c.host_multithread,
                c.pipelined,
                c.device,
                c.transient,
                r.entire_space,
            );
        }
    }
    for tech in ["In-Kernel", "PFP", "PreScaler"] {
        let g = geomean_speedup(results, tech);
        let _ = writeln!(report, "geomean {tech}: {g:.3}x");
    }
    let ty = aggregate_types(results, "PreScaler");
    let cv = aggregate_conversions(results, "PreScaler");
    let _ = writeln!(
        report,
        "PreScaler type distribution: half {} / single {} / double {}",
        ty.half, ty.single, ty.double
    );
    let _ = writeln!(
        report,
        "PreScaler conversions: none {} loop {} mt {} pipe {} device {} transient {}",
        cv.none, cv.host_loop, cv.host_multithread, cv.pipelined, cv.device, cv.transient
    );
    report
}

/// CSV header shared by the suite-based figures.
fn suite_csv_header() -> String {
    "system,benchmark,technique,speedup,quality,trials,time_secs,kernel_secs,\
     ty_half,ty_single,ty_double,cv_none,cv_loop,cv_mt,cv_pipe,cv_device,cv_transient,entire_space\n"
        .to_owned()
}

/// Fig. 9: In-Kernel / PFP / PreScaler on the three systems, plus type and
/// conversion distributions.
#[must_use]
pub fn fig9(cfg: &SuiteConfig) -> Experiment {
    let mut report = String::new();
    let mut csv = suite_csv_header();
    for system in SystemModel::paper_systems() {
        let results = run_suite(&system, cfg);
        report.push_str(&suite_report(
            &results,
            &format!("Figure 9: {}", system.name),
            &mut csv,
            &system.name,
        ));
        report.push('\n');
    }
    Experiment {
        id: "fig9".into(),
        report,
        csv,
    }
}

/// Fig. 10: detailed System-1 analysis — (a) normalized times, (b) trials
/// vs the entire space (Eq. 1 with four methods).
#[must_use]
pub fn fig10(cfg: &SuiteConfig) -> Experiment {
    let system = SystemModel::system1();
    let results = run_suite(&system, cfg);
    let mut report = String::from(
        "Figure 10(a): normalized execution time on System 1 (B/K/F/P)\n\
         name      B      K      F      P\n",
    );
    let mut csv = suite_csv_header();
    for r in &results {
        let b = r.row("Baseline").map_or(1.0, |x| x.time_secs);
        let k = r.row("In-Kernel").map_or(f64::NAN, |x| x.time_secs) / b;
        let f = r.row("PFP").map_or(f64::NAN, |x| x.time_secs) / b;
        let p = r.row("PreScaler").map_or(f64::NAN, |x| x.time_secs) / b;
        let _ = writeln!(
            report,
            "{:<9} 1.000  {k:<6.3} {f:<6.3} {p:<6.3}",
            r.kind.name()
        );
    }
    report.push_str(
        "\nFigure 10(b): execution trials vs entire search space (4 methods)\n\
         name      prescaler_trials entire_space  tested_fraction\n",
    );
    for r in &results {
        let trials = r.row("PreScaler").map_or(0, |x| x.trials);
        let _ = writeln!(
            report,
            "{:<9} {:<16} {:<13.3e} {:.3e}",
            r.kind.name(),
            trials,
            r.entire_space,
            trials as f64 / r.entire_space,
        );
    }
    let _ = suite_report(&results, "detail", &mut csv, &system.name);
    Experiment {
        id: "fig10".into(),
        report,
        csv,
    }
}

/// Fig. 11: PCIe-bandwidth adaptivity — System 1 at x16 vs x8.
#[must_use]
pub fn fig11(cfg: &SuiteConfig) -> Experiment {
    let mut report = String::new();
    let mut csv = suite_csv_header();
    let mut speeds = Vec::new();
    for lanes in [16u8, 8] {
        let system = SystemModel::system1().with_pcie_lanes(lanes);
        let mut c = cfg.clone();
        c.run_in_kernel = false;
        let results = run_suite(&system, &c);
        report.push_str(&suite_report(
            &results,
            &format!("Figure 11: {}", system.name),
            &mut csv,
            &system.name,
        ));
        report.push('\n');
        speeds.push((lanes, geomean_speedup(&results, "PreScaler")));
    }
    let _ = writeln!(
        report,
        "PreScaler geomean: x{} = {:.3}x, x{} = {:.3}x (narrower link ⇒ larger gain)",
        speeds[0].0, speeds[0].1, speeds[1].0, speeds[1].1
    );
    Experiment {
        id: "fig11".into(),
        report,
        csv,
    }
}

/// Fig. 12: application adaptivity — input sets (a–c) and TOQ sweep (d).
#[must_use]
pub fn fig12(cfg: &SuiteConfig) -> Experiment {
    let system = SystemModel::system1();
    let mut report = String::new();
    let mut csv = suite_csv_header();
    for input in InputSet::ALL {
        let mut c = cfg.clone();
        c.input = input;
        c.run_in_kernel = false;
        let results = run_suite(&system, &c);
        report.push_str(&suite_report(
            &results,
            &format!("Figure 12(a–c): input set {}", input.label()),
            &mut csv,
            &format!("{} [{}]", system.name, input.label()),
        ));
        report.push('\n');
    }
    report.push_str("Figure 12(d): TOQ sweep (Default inputs)\n");
    for toq in [0.90, 0.95, 0.99] {
        let mut c = cfg.clone();
        c.toq = toq;
        c.run_in_kernel = false;
        let results = run_suite(&system, &c);
        let g = geomean_speedup(&results, "PreScaler");
        let _ = writeln!(report, "TOQ {toq:.2}: PreScaler geomean {g:.3}x");
        let _ = suite_report(
            &results,
            &format!("TOQ {toq}"),
            &mut csv,
            &format!("{} [toq={toq}]", system.name),
        );
    }
    Experiment {
        id: "fig12".into(),
        report,
        csv,
    }
}

// ---------------------------------------------------------------------------
// Ablation: design choices of the decision maker
// ---------------------------------------------------------------------------

/// Ablation study: PreScaler with the wildcard test and the PFP seeding
/// individually disabled, quantifying each design choice's contribution
/// (DESIGN.md's per-choice ablation).
#[must_use]
pub fn ablation(cfg: &SuiteConfig) -> Experiment {
    use prescaler_core::{PreScaler, SystemInspector};
    let system = SystemModel::system1();
    let db = SystemInspector::inspect(&system);
    let mut report = String::from(
        "Ablation (System 1): PreScaler variants, speedup over baseline\n\
         name      full    -wildcard -pfp_seed trials_full\n",
    );
    let mut csv = String::from("name,variant,speedup,quality,trials\n");
    for &kind in &cfg.kinds {
        let app = PolyApp::scaled(kind, cfg.input, cfg.scale);
        let variants: [(&str, PreScaler); 3] = [
            ("full", PreScaler::new(&system, &db, cfg.toq)),
            (
                "no_wildcard",
                PreScaler::new(&system, &db, cfg.toq).without_wildcard(),
            ),
            (
                "no_pfp_seed",
                PreScaler::new(&system, &db, cfg.toq).without_pfp_seed(),
            ),
        ];
        let mut cells = Vec::new();
        let mut trials_full = 0;
        for (name, tuner) in variants {
            let tuned = tuner.tune(&app).expect("ablation tune");
            if name == "full" {
                trials_full = tuned.trials;
            }
            cells.push(tuned.speedup());
            let _ = writeln!(
                csv,
                "{},{},{:.4},{:.4},{}",
                kind.name(),
                name,
                tuned.speedup(),
                tuned.eval.quality,
                tuned.trials
            );
        }
        let _ = writeln!(
            report,
            "{:<9} {:<7.3} {:<9.3} {:<9.3} {}",
            kind.name(),
            cells[0],
            cells[1],
            cells[2],
            trials_full
        );
    }
    report.push_str(
        "(full >= each ablated variant is expected; equality means the\n\
         feature did not fire for that benchmark/system)\n",
    );
    Experiment {
        id: "ablation".into(),
        report,
        csv,
    }
}
