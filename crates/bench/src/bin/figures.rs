//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! figures [ids...] [--scale S] [--toq Q] [--ik-cap N] [--out DIR] [--quick]
//! ```
//!
//! `ids` default to `all`. Known ids: `table1 table3 table4 fig4 fig5 fig6
//! fig9 fig10 fig11 fig12`. `--quick` shrinks problem sizes and benchmark
//! coverage for a fast smoke run.

use prescaler_bench::experiments as exp;
use prescaler_bench::{Experiment, SuiteConfig};
use prescaler_polybench::BenchKind;
use std::path::PathBuf;

struct Options {
    ids: Vec<String>,
    scale: f64,
    toq: f64,
    ik_cap: usize,
    out: PathBuf,
    quick: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        ids: Vec::new(),
        scale: 1.0,
        toq: 0.9,
        ik_cap: 60,
        out: PathBuf::from("results"),
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--toq" => {
                opts.toq = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--toq needs a number"));
            }
            "--ik-cap" => {
                opts.ik_cap = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--ik-cap needs an integer"));
            }
            "--out" => {
                opts.out = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--quick" => opts.quick = true,
            id if !id.starts_with('-') => opts.ids.push(id.to_owned()),
            other => die(&format!("unknown option `{other}`")),
        }
    }
    if opts.ids.is_empty() || opts.ids.iter().any(|i| i == "all") {
        opts.ids = vec![
            "table1", "table3", "table4", "fig4", "fig5", "fig6", "fig9", "fig10", "fig11",
            "fig12", "ablation",
        ]
        .into_iter()
        .map(str::to_owned)
        .collect();
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("figures: {msg}");
    std::process::exit(2);
}

fn main() {
    let opts = parse_args();
    let scale = if opts.quick { 0.1 } else { opts.scale };
    let kinds: Vec<BenchKind> = if opts.quick {
        vec![
            BenchKind::Gemm,
            BenchKind::Atax,
            BenchKind::TwoDConv,
            BenchKind::Corr,
        ]
    } else {
        BenchKind::ALL.to_vec()
    };
    let cfg = SuiteConfig {
        scale,
        toq: opts.toq,
        ik_cap: opts.ik_cap,
        kinds,
        ..SuiteConfig::default()
    };

    for id in &opts.ids {
        let t0 = std::time::Instant::now();
        let e: Experiment = match id.as_str() {
            "table1" => exp::table1(),
            "table3" => exp::table3(),
            "table4" => exp::table4(),
            "fig4" => exp::fig4(scale),
            "fig5" => exp::fig5(),
            "fig6" => exp::fig6(scale.min(0.5)),
            "fig9" => exp::fig9(&cfg),
            "fig10" => exp::fig10(&cfg),
            "fig11" => exp::fig11(&cfg),
            "fig12" => exp::fig12(&cfg),
            "ablation" => exp::ablation(&cfg),
            other => die(&format!("unknown experiment `{other}`")),
        };
        println!("{}", e.report);
        match e.write_csv(&opts.out) {
            Ok(path) => println!(
                "[{} done in {:.1?}; csv: {}]\n",
                e.id,
                t0.elapsed(),
                path.display()
            ),
            Err(err) => eprintln!("[{}: csv write failed: {err}]", e.id),
        }
    }
}
