//! Kernel-execution micro-benchmark: sequential vs data-parallel VM.
//!
//! Times a gemm-class kernel (provably disjoint stores, the shape the
//! disjoint-write analysis certifies) through `CompiledKernel` at 1
//! thread and at each parallel budget, asserts bit-identical outputs and
//! counts, and writes the results to `BENCH_kernel.json` at the repo
//! root. The speedup column is honest for the machine the benchmark ran
//! on: `host_cores` records how much hardware parallelism was actually
//! available, so a 1-core container reporting ~1.0x is expected, not a
//! regression.
//!
//! Usage: `cargo run --release -p prescaler-bench --bin bench_kernel
//! [iterations]` (default 5; wall-time is the minimum over iterations).

use prescaler_ir::dsl::*;
use prescaler_ir::interp::{BufferMap, Launch};
use prescaler_ir::vm::{compile_kernel, ParallelSafety, VmScratch};
use prescaler_ir::{Access, FloatVec, Kernel, Precision};
use std::time::Instant;

const N: i64 = 96;

fn gemm_kernel(n: i64) -> (Kernel, BufferMap, Launch) {
    let k = kernel("gemm")
        .buffer("a", Precision::Double, Access::Read)
        .buffer("b", Precision::Double, Access::Read)
        .buffer("c", Precision::Double, Access::Write)
        .int_param("n")
        .body(vec![
            let_("j", global_id(0)),
            let_("i", global_id(1)),
            let_acc("acc", "c", flit(0.0)),
            for_(
                "k",
                int(0),
                var("n"),
                vec![add_assign(
                    "acc",
                    load("a", var("i") * var("n") + var("k"))
                        * load("b", var("k") * var("n") + var("j")),
                )],
            ),
            store("c", var("i") * var("n") + var("j"), var("acc")),
        ]);
    let nn = n as usize;
    let mut bufs = BufferMap::new();
    let xs: Vec<f64> = (0..nn * nn).map(|i| (i as f64 * 0.001).sin()).collect();
    bufs.insert("a".into(), FloatVec::from_f64_slice(&xs, Precision::Double));
    bufs.insert("b".into(), FloatVec::from_f64_slice(&xs, Precision::Double));
    bufs.insert("c".into(), FloatVec::zeros(nn * nn, Precision::Double));
    let launch = Launch::two_d(nn, nn).arg_int("n", n);
    (k, bufs, launch)
}

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let (k, bufs, launch) = gemm_kernel(N);
    let compiled = compile_kernel(&k).expect("gemm compiles");
    assert!(
        matches!(compiled.parallel_safety(), ParallelSafety::Disjoint(_)),
        "gemm stores must be provably disjoint"
    );
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut scratch = VmScratch::new();
    let time_at = |threads: usize, scratch: &mut VmScratch| -> (f64, BufferMap) {
        let mut best = f64::INFINITY;
        let mut out = bufs.clone();
        for _ in 0..iters {
            let mut m = bufs.clone();
            let t0 = Instant::now();
            if threads <= 1 {
                compiled.run_with_scratch(&mut m, &launch, scratch).unwrap();
            } else {
                compiled
                    .run_parallel(&mut m, &launch, scratch, threads)
                    .unwrap();
            }
            best = best.min(t0.elapsed().as_secs_f64() * 1e6);
            out = m;
        }
        (best, out)
    };

    // Warm-up.
    let _ = time_at(1, &mut scratch);

    let (seq_us, seq_out) = time_at(1, &mut scratch);
    println!("gemm{N} sequential: {seq_us:.3} us");

    let mut rows = Vec::new();
    for threads in [2usize, 4, 8] {
        let (par_us, par_out) = time_at(threads, &mut scratch);
        assert_eq!(
            seq_out["c"], par_out["c"],
            "parallel output must be bit-identical at {threads} threads"
        );
        let speedup = seq_us / par_us;
        println!("gemm{N} parallel x{threads}: {par_us:.3} us ({speedup:.2}x)");
        rows.push(format!(
            "    {{ \"threads\": {threads}, \"us\": {par_us:.3}, \"speedup\": {speedup:.3} }}"
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"kernel/gemm{N}\",\n  \"host_cores\": {host_cores},\n  \"iterations\": {iters},\n  \"sequential_us\": {seq_us:.3},\n  \"parallel\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernel.json");
    std::fs::write(&path, &json).expect("write BENCH_kernel.json");
    println!("wrote {}", path.display());
}
