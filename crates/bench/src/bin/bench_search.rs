//! Decision-search micro-benchmark with trial-engine accounting.
//!
//! Times the full tune pipeline on the same small GEMM the criterion
//! `decision_search` bench uses, reports the trial engine's charged
//! trials and cache hit-rate for one tune, and writes everything to
//! `BENCH_search.json` next to the repo root — alongside the recorded
//! pre-trial-engine number, so the speedup claim is auditable.
//!
//! Usage: `cargo run --release -p prescaler-bench --bin bench_search
//! [iterations]` (default 5; wall-time is the minimum over iterations,
//! the right statistic on a noisy shared host).

use prescaler_core::{profile_app, PreScaler, SystemInspector, TrialEngine};
use prescaler_polybench::{BenchKind, InputSet, PolyApp};
use prescaler_sim::SystemModel;
use std::time::Instant;

/// `search/tune_gemm_small` us/iter recorded by criterion at the commit
/// before the trial engine + VM fast path landed (sample_size 10).
const BEFORE_US: f64 = 1_096_957.863;

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let system = SystemModel::system1();
    let db = SystemInspector::inspect(&system);
    let app = PolyApp::scaled(BenchKind::Gemm, InputSet::Default, 0.08);
    let tuner = PreScaler::new(&system, &db, 0.9);

    // Warm-up run (page in code, fill allocator pools).
    let warm = tuner.tune(&app).expect("tune");

    let mut runs_us = Vec::with_capacity(iters);
    for i in 0..iters {
        let t0 = Instant::now();
        let tuned = tuner.tune(&app).expect("tune");
        let us = t0.elapsed().as_secs_f64() * 1e6;
        assert_eq!(tuned.config, warm.config, "tune must be deterministic");
        println!(
            "run {}: {us:.3} us  (trials {}, cache hits {})",
            i + 1,
            tuned.trials,
            tuned.cache_hits
        );
        runs_us.push(us);
    }
    let after_us = runs_us.iter().copied().fold(f64::INFINITY, f64::min);

    // Engine accounting for a single tune, measured directly on a fresh
    // engine so the stats are not conflated with the timing loop.
    let profile = profile_app(&app, &system).expect("profile");
    let engine = TrialEngine::new(&app, &system, &profile);
    let tuned = tuner.tune_with_engine(&engine);
    let stats = engine.stats();
    let asks = stats.charged + stats.cache_hits;
    let hit_rate = if asks == 0 {
        0.0
    } else {
        stats.cache_hits as f64 / asks as f64
    };

    let runs_json = runs_us
        .iter()
        .map(|u| format!("{u:.3}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"benchmark\": \"search/tune_gemm_small\",\n  \"before_us\": {BEFORE_US:.3},\n  \"after_us\": {after_us:.3},\n  \"speedup\": {:.3},\n  \"runs_us\": [{runs_json}],\n  \"trials\": {},\n  \"cache_hits\": {},\n  \"cache_hit_rate\": {hit_rate:.4},\n  \"executions\": {}\n}}\n",
        BEFORE_US / after_us,
        tuned.trials,
        tuned.cache_hits,
        stats.executions,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_search.json");
    std::fs::write(&path, &json).expect("write BENCH_search.json");

    println!();
    println!(
        "tune_gemm_small: {after_us:.3} us (min of {iters}), before {BEFORE_US:.3} us -> {:.2}x",
        BEFORE_US / after_us
    );
    println!(
        "one tune: {} charged trials, {} cache hits ({:.1}% hit rate), {} kernel executions",
        tuned.trials,
        tuned.cache_hits,
        hit_rate * 100.0,
        stats.executions
    );
    println!("wrote {}", path.display());
}
