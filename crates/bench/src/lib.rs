//! The experiment harness: regenerates every table and figure of the
//! PreScaler paper's evaluation section on the simulated systems.
//!
//! * [`suite`] — runs Baseline / In-Kernel / PFP / PreScaler per benchmark
//!   (in parallel across benchmarks) and aggregates distributions;
//! * [`experiments`] — one function per table/figure, each returning a
//!   printable report and a CSV.
//!
//! The `figures` binary drives these:
//!
//! ```text
//! cargo run --release -p prescaler-bench --bin figures -- all
//! cargo run --release -p prescaler-bench --bin figures -- fig9 --scale 0.5
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod suite;

pub use experiments::Experiment;
pub use suite::{run_suite, BenchResult, SuiteConfig};
