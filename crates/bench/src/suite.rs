//! The evaluation suite: run Baseline / In-Kernel / PFP / PreScaler over
//! benchmarks on a system, in parallel, producing [`ResultRow`]s.

use prescaler_core::baselines::{in_kernel, pfp};
use prescaler_core::report::{
    conversion_distribution, type_distribution, ConversionDistribution, TypeDistribution,
};
use prescaler_core::search_space;
use prescaler_core::{
    profile_app, InspectorDb, PreScaler, ResultRow, SystemInspector, TrialEngine,
};
use prescaler_ocl::ScalingSpec;
use prescaler_polybench::{BenchKind, InputSet, PolyApp};
use prescaler_sim::SystemModel;

/// Suite parameters.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// Problem-size scale (1.0 = experiment scale).
    pub scale: f64,
    /// Target output quality.
    pub toq: f64,
    /// Input set.
    pub input: InputSet,
    /// Trial cap for the exhaustive In-Kernel search.
    pub ik_cap: usize,
    /// Which benchmarks to run.
    pub kinds: Vec<BenchKind>,
    /// Whether to run the (expensive) In-Kernel baseline.
    pub run_in_kernel: bool,
    /// Worker threads (experiments are independent per benchmark).
    pub threads: usize,
}

impl Default for SuiteConfig {
    fn default() -> SuiteConfig {
        SuiteConfig {
            scale: 1.0,
            toq: 0.9,
            input: InputSet::Default,
            ik_cap: 60,
            kinds: BenchKind::ALL.to_vec(),
            run_in_kernel: true,
            threads: std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get),
        }
    }
}

/// All technique results for one benchmark on one system.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// The benchmark.
    pub kind: BenchKind,
    /// Per-technique rows: Baseline, In-Kernel (if run), PFP, PreScaler.
    pub rows: Vec<ResultRow>,
    /// Eq. 1 size of the entire configuration space (4 methods).
    pub entire_space: f64,
    /// Fraction of total baseline time spent in kernels (Fig. 4).
    pub baseline_kernel_fraction: f64,
    /// Fractions of baseline time: HtoD, kernel, DtoH (Fig. 4 bars).
    pub baseline_fractions: [f64; 3],
}

impl BenchResult {
    /// The row for a technique, if present.
    #[must_use]
    pub fn row(&self, technique: &str) -> Option<&ResultRow> {
        self.rows.iter().find(|r| r.technique == technique)
    }

    /// Speedup of a technique (1.0 when missing).
    #[must_use]
    pub fn speedup(&self, technique: &str) -> f64 {
        self.row(technique).map_or(1.0, |r| r.speedup)
    }
}

/// Runs the suite for one system.
///
/// # Panics
///
/// Panics if any benchmark fails to execute — experiment configurations
/// are all expected to run.
#[must_use]
pub fn run_suite(system: &SystemModel, cfg: &SuiteConfig) -> Vec<BenchResult> {
    let db = SystemInspector::inspect(system);
    let mut results: Vec<Option<BenchResult>> = Vec::new();
    results.resize_with(cfg.kinds.len(), || None);

    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mx = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..cfg.threads.clamp(1, cfg.kinds.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= cfg.kinds.len() {
                    break;
                }
                let kind = cfg.kinds[i];
                let r = run_one(system, &db, cfg, kind);
                results_mx.lock().expect("no poisoned results")[i] = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every benchmark slot filled"))
        .collect()
}

/// Runs all techniques for one benchmark.
#[must_use]
pub fn run_one(
    system: &SystemModel,
    db: &InspectorDb,
    cfg: &SuiteConfig,
    kind: BenchKind,
) -> BenchResult {
    let app = PolyApp::scaled(kind, cfg.input, cfg.scale);
    let profile = profile_app(&app, system).expect("baseline run");
    let base_time = profile.baseline_time;
    let tl = profile.log.timeline;
    let total = tl.total().as_secs().max(1e-30);
    let baseline_fractions = [
        (tl.htod + tl.host_convert).as_secs() / total,
        tl.kernel.as_secs() / total,
        (tl.dtoh + tl.device_convert).as_secs() / total,
    ];

    // One profiling run serves every technique. The two baseline
    // techniques share one memo cache (their spec shapes are disjoint);
    // the tuner gets its own engine so its `trials` count stays
    // comparable to a standalone `tune` call.
    let baseline_engine = TrialEngine::new(&app, system, &profile);

    let mut rows = Vec::new();
    rows.push(ResultRow {
        benchmark: kind.name().to_owned(),
        technique: "Baseline".to_owned(),
        time_secs: base_time.as_secs(),
        kernel_secs: tl.kernel.as_secs(),
        speedup: 1.0,
        quality: 1.0,
        trials: 1,
        cache_hits: 0,
        pruned_static: 0,
        types: type_distribution(&profile, &ScalingSpec::baseline()),
        conversions: conversion_distribution(&profile, &ScalingSpec::baseline()),
    });

    if cfg.run_in_kernel {
        let before = baseline_engine.stats();
        let ik = in_kernel(&baseline_engine, cfg.toq, cfg.ik_cap);
        rows.push(ResultRow {
            benchmark: kind.name().to_owned(),
            technique: "In-Kernel".to_owned(),
            time_secs: ik.eval.time.as_secs(),
            kernel_secs: ik.eval.kernel_time.as_secs(),
            speedup: base_time / ik.eval.time,
            quality: ik.eval.quality,
            trials: ik.trials,
            cache_hits: baseline_engine.stats().cache_hits - before.cache_hits,
            pruned_static: 0,
            // In-kernel keeps objects at full precision.
            types: type_distribution(&profile, &ik.config),
            conversions: conversion_distribution(&profile, &ik.config),
        });
    }

    let before = baseline_engine.stats();
    let p = pfp(&baseline_engine, cfg.toq);
    rows.push(ResultRow {
        benchmark: kind.name().to_owned(),
        technique: "PFP".to_owned(),
        time_secs: p.eval.time.as_secs(),
        kernel_secs: p.eval.kernel_time.as_secs(),
        speedup: base_time / p.eval.time,
        quality: p.eval.quality,
        trials: p.trials,
        cache_hits: baseline_engine.stats().cache_hits - before.cache_hits,
        pruned_static: 0,
        types: type_distribution(&profile, &p.config),
        conversions: conversion_distribution(&profile, &p.config),
    });

    let tuner = PreScaler::new(system, db, cfg.toq);
    let tuner_engine = TrialEngine::new(&app, system, &profile);
    let tuned = tuner.tune_with_engine(&tuner_engine);
    rows.push(ResultRow {
        benchmark: kind.name().to_owned(),
        technique: "PreScaler".to_owned(),
        time_secs: tuned.eval.time.as_secs(),
        kernel_secs: tuned.eval.kernel_time.as_secs(),
        speedup: tuned.speedup(),
        quality: tuned.eval.quality,
        trials: tuned.trials,
        cache_hits: tuned.cache_hits,
        pruned_static: tuned.pruned_static,
        types: type_distribution(&tuned.profile, &tuned.config),
        conversions: conversion_distribution(&tuned.profile, &tuned.config),
    });

    let spaces = search_space::object_spaces(&profile);
    BenchResult {
        kind,
        rows,
        entire_space: search_space::entire(&spaces, 4),
        baseline_kernel_fraction: baseline_fractions[1],
        baseline_fractions,
    }
}

/// Geometric mean of per-benchmark speedups for a technique.
#[must_use]
pub fn geomean_speedup(results: &[BenchResult], technique: &str) -> f64 {
    if results.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = results
        .iter()
        .map(|r| r.speedup(technique).max(1e-12).ln())
        .sum();
    (log_sum / results.len() as f64).exp()
}

/// Aggregate type distribution across benchmarks for a technique.
#[must_use]
pub fn aggregate_types(results: &[BenchResult], technique: &str) -> TypeDistribution {
    let mut agg = TypeDistribution::default();
    for r in results {
        if let Some(row) = r.row(technique) {
            agg.half += row.types.half;
            agg.single += row.types.single;
            agg.double += row.types.double;
        }
    }
    agg
}

/// Aggregate conversion distribution across benchmarks for a technique.
#[must_use]
pub fn aggregate_conversions(results: &[BenchResult], technique: &str) -> ConversionDistribution {
    let mut agg = ConversionDistribution::default();
    for r in results {
        if let Some(row) = r.row(technique) {
            agg.none += row.conversions.none;
            agg.host_loop += row.conversions.host_loop;
            agg.host_multithread += row.conversions.host_multithread;
            agg.pipelined += row.conversions.pipelined;
            agg.device += row.conversions.device;
            agg.transient += row.conversions.transient;
        }
    }
    agg
}
