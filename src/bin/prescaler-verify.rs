//! `prescaler-verify` — the IR-verifier CI check.
//!
//! Verifies every kernel of every polybench benchmark and requires
//! **zero diagnostics of any severity** (the session gate only rejects
//! errors; shipped kernels are held to the stricter bar of no warnings
//! either). Then sanity-checks the verifier itself against a matrix of
//! deliberately broken kernels, each of which must produce its specific
//! typed diagnostic. Exits nonzero on any violation.
//!
//! ```text
//! cargo run --release --bin prescaler-verify
//! ```

use prescaler_ir::ast::{Access, Stmt};
use prescaler_ir::dsl::{
    flit, for_, global_id, if_, int, kernel, let_, load, lt, store, var, KernelBuilder,
};
use prescaler_ir::{verify_kernel, verify_program, Precision, VerifyDiagnostic};
use prescaler_ocl::HostApp;
use prescaler_polybench::{BenchKind, PolyApp};

fn broken_base() -> KernelBuilder {
    kernel("k")
        .buffer("a", Precision::Double, Access::Read)
        .buffer("c", Precision::Double, Access::ReadWrite)
        .int_param("n")
}

/// A body using every parameter, so only the seeded defect reports.
fn use_all() -> Vec<Stmt> {
    vec![
        let_("i", global_id(0)),
        if_(
            lt(var("i"), var("n")),
            vec![store("c", var("i"), load("a", var("i")) + flit(1.0))],
        ),
    ]
}

fn main() {
    let mut failures = 0usize;

    // Part 1: every shipped benchmark kernel verifies completely clean.
    let mut kernels = 0usize;
    for kind in BenchKind::ALL {
        let app = PolyApp::tiny(kind);
        let program = app.program();
        kernels += program.kernels.len();
        let diagnostics = verify_program(&program);
        if diagnostics.is_empty() {
            println!(
                "ok   {:<8} {} kernels clean",
                app.name(),
                program.kernels.len()
            );
        } else {
            failures += diagnostics.len();
            for d in diagnostics {
                println!("FAIL {:<8} {d}", app.name());
            }
        }
    }

    // Part 2: the verifier still catches each defect class. A verifier
    // that silently stopped reporting would make part 1 vacuous.
    let with = |defect: Vec<Stmt>| {
        let mut body = use_all();
        body.extend(defect);
        broken_base().body(body)
    };
    type BrokenCase = (
        &'static str,
        prescaler_ir::Kernel,
        fn(&VerifyDiagnostic) -> bool,
    );
    let matrix: Vec<BrokenCase> = vec![
        (
            "unbound variable",
            with(vec![store("c", int(0), var("ghost"))]),
            |d| matches!(d, VerifyDiagnostic::UnboundVar { name, .. } if name == "ghost"),
        ),
        (
            "type clash",
            with(vec![for_(
                "j",
                int(0),
                prescaler_ir::ast::Expr::FloatConst(4.0),
                vec![],
            )]),
            |d| matches!(d, VerifyDiagnostic::TypeClash { .. }),
        ),
        (
            "negative constant index",
            with(vec![let_("x", load("a", int(0) - int(3)))]),
            |d| matches!(d, VerifyDiagnostic::OobConstIndex { index: -3, .. }),
        ),
        (
            "dead store",
            with(vec![
                store("c", int(0), flit(1.0)),
                store("c", int(0), flit(2.0)),
            ]),
            |d| matches!(d, VerifyDiagnostic::DeadStore { index: 0, .. }),
        ),
        (
            "unused parameter",
            broken_base()
                .float_param("beta", Precision::Double)
                .body(use_all()),
            |d| matches!(d, VerifyDiagnostic::UnusedParam { param, .. } if param == "beta"),
        ),
        (
            "store through non-buffer",
            with(vec![store("n", int(0), flit(1.0))]),
            |d| matches!(d, VerifyDiagnostic::NonBufferStore { name, .. } if name == "n"),
        ),
    ];
    for (label, broken, expected) in &matrix {
        let ds = verify_kernel(broken);
        match ds.iter().find(|d| expected(d)) {
            Some(d) => println!("ok   rejects  {label}: {d}"),
            None => {
                failures += 1;
                println!("FAIL rejects  {label}: expected diagnostic missing in {ds:?}");
            }
        }
    }

    println!("\n{kernels} benchmark kernels verified, {failures} failures");
    if failures > 0 {
        std::process::exit(1);
    }
}
