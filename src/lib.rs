//! Umbrella crate for the PreScaler (CGO'20) reproduction.
//!
//! This package exists to host the repository-level `examples/` and
//! `tests/`; the functionality lives in the workspace members:
//!
//! * [`prescaler_fp16`] — IEEE 754 binary16 softfloat;
//! * [`prescaler_ir`] — kernel IR, passes, parser/printer, interpreter,
//!   bytecode VM, static analysis;
//! * [`prescaler_sim`] — CPU/GPU/PCIe system models and conversion
//!   methods;
//! * [`prescaler_ocl`] — the mini OpenCL runtime with profiling
//!   interposition;
//! * [`prescaler_polybench`] — the 14 evaluation benchmarks;
//! * [`prescaler_core`] — the PreScaler framework itself (inspector,
//!   profiler, decision maker, baselines).
//!
//! Start with `examples/quickstart.rs`, or the README.

pub use prescaler_core;
pub use prescaler_fp16;
pub use prescaler_ir;
pub use prescaler_ocl;
pub use prescaler_polybench;
pub use prescaler_sim;
