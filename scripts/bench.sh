#!/usr/bin/env bash
# Performance benchmarks for the trial engine and the kernel VM.
#
# Runs the criterion-compat `decision_search` and `kernel_execution`
# benches, then the `bench_search` binary, which times the full tune
# pipeline wall-clock (min over several runs — the robust statistic on a
# noisy host), reports charged trials and the trial-engine cache
# hit-rate, and writes the results to BENCH_search.json at the repo
# root next to the recorded pre-trial-engine baseline. The
# `bench_kernel` binary then times one provably-disjoint gemm kernel
# sequentially and at each parallel thread budget (asserting bit-equal
# outputs) and writes BENCH_kernel.json, recording `host_cores` so the
# speedup column is honest for the machine it ran on.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench --offline -p prescaler-bench --bench decision_search
cargo bench --offline -p prescaler-bench --bench kernel_execution

# A min-of-N needs a real sample: never record fewer than 3 runs.
iters="${1:-5}"
if [ "$iters" -lt 3 ]; then
    echo "bench.sh: clamping iterations ${iters} -> 3 (min-of-N needs a sample)" >&2
    iters=3
fi
cargo run --release --offline -p prescaler-bench --bin bench_search "$iters"
cargo run --release --offline -p prescaler-bench --bin bench_kernel "$iters"

echo
echo "=== BENCH_search.json ==="
cat BENCH_search.json
echo
echo "=== BENCH_kernel.json ==="
cat BENCH_kernel.json
