#!/usr/bin/env bash
# Tier-1 gate: release build, full workspace test suite, lints, formatting.
# Everything runs offline — external crates are vendored as shims under
# crates/compat/, so no registry access is needed (or attempted).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
# Examples and benches must keep building too — a target that only the
# default build compiles can rot silently.
cargo build --release --offline --workspace --all-targets
cargo test -q --workspace --offline
# Default lints plus a curated clippy::pedantic subset, enforced
# workspace-wide: consistent trailing semicolons, method-path closures,
# iterator idiom, map_or over map+unwrap_or, let-else over match-else.
cargo clippy --workspace --all-targets --offline -- -D warnings \
    -D clippy::semicolon_if_nothing_returned \
    -D clippy::redundant-closure-for-method-calls \
    -D clippy::explicit-iter-loop \
    -D clippy::map-unwrap-or \
    -D clippy::needless-continue \
    -D clippy::manual-let-else
cargo fmt --all --check

# IR verifier gate: every shipped polybench kernel must verify with zero
# diagnostics of any severity, and the verifier must still reject each
# deliberately broken kernel class with its specific typed diagnostic.
cargo run --release --offline --bin prescaler-verify

# Seeded fault matrix: the guard, pipeline, crash-resume, and
# system-drift property suites replayed under fixed seeds, so every CI
# run explores the same three fault universes deterministically (the
# suites mix the seed into their generated fault plans via
# PRESCALER_FAULT_SEED). The crash-resume suite kills a durable tune at
# every trial boundary — under clean, torn-tail, and garbage-tail
# shutdowns — and requires the resumed result to be bit-identical with
# zero journaled trials re-executed. The drift suite throttles, starves,
# and unplugs the serving system and requires TOQ-or-fallback serving,
# typed device-loss errors, fingerprint-bound snapshots, and warm
# re-tunes that are bit-identical to cold ones at strictly fewer
# executions. The serving suite overloads a bounded-admission front-end
# (arrival bursts, tight queues, tight deadlines, device loss) and
# requires bit-identical per-request outcomes at 1/2/8 workers, a typed
# rejection for every shed request, and TOQ-or-fallback for every
# admitted one. The static-analysis suite pins the prune-equivalence
# guarantee — tuned decisions bit-identical with static pruning on and
# off, trials strictly fewer where anything was pruned — per fault
# universe.
for seed in 1 2 3; do
    PRESCALER_FAULT_SEED=$seed \
        cargo test -q --offline \
        --test guard_properties --test pipeline_properties \
        --test crash_resume_properties --test drift_properties \
        --test serve_properties --test parallel_exec_properties \
        --test static_analysis_properties
done

# Data-parallel execution equivalence: the whole workspace suite must
# pass with the session's default thread budget pinned to 1 (today's
# sequential behavior), 2, and 8 — execution parallelism is physical
# only and must never change an output, an OpCounts, or a Timeline.
for threads in 1 2 8; do
    PRESCALER_EXEC_THREADS=$threads \
        cargo test -q --offline --test parallel_exec_properties
done

# Crash-resume smoke: kill one tune at a seeded boundary with a seeded
# tear, resume it, and byte-compare the resumed Tuned snapshot against
# the uninterrupted reference. Drift-failover smoke: lose the device
# mid-serve, fail over, revalidate, warm re-tune for the throttled
# system, and serve again — every guarantee self-asserted.
for seed in 1 2 3; do
    PRESCALER_FAULT_SEED=$seed \
        cargo run --release --offline --example crash_resume
    PRESCALER_FAULT_SEED=$seed \
        cargo run --release --offline --example drift_failover
done

# The guarded-serving example doubles as an end-to-end smoke test: it
# asserts its own breaker-trip / recovery / accounting guarantees.
cargo run --release --offline --example guarded_serving

# Static-pruning smoke: proves overflow on default-input benchmarks,
# self-asserts candidates were pruned without a trial, decisions are
# digest-identical with pruning off, and proven ranges seed the guard's
# envelopes without tripping a clean production run.
cargo run --release --offline --example static_prune

# Multi-worker serving stress: run the overloaded serving example as
# three separate processes at 1, 2, and 8 workers and diff the printed
# per-request outcome digests — worker count is physical parallelism
# only and must never change an outcome. (The example also self-asserts
# bounded-queue, typed-shedding, and TOQ-or-fallback guarantees.)
serve_digests=""
for workers in 1 2 8; do
    digest=$(PRESCALER_SERVE_WORKERS=$workers \
        cargo run --release --offline --example serve_under_load \
        | grep '^outcome digest:' | awk '{print $3}')
    echo "serve_under_load @ ${workers} workers -> digest ${digest}"
    serve_digests="${serve_digests} ${digest}"
done
if [ "$(echo "${serve_digests}" | tr ' ' '\n' | sed '/^$/d' | sort -u | wc -l)" -ne 1 ]; then
    echo "serving outcomes diverged across worker counts:${serve_digests}" >&2
    exit 1
fi

# Benchmarks must keep compiling, and the search benchmark binary doubles
# as a perf smoke test (trial/cache accounting asserted deterministic).
# Three iterations so the recorded BENCH_search.json min is taken over a
# real sample, not a single (possibly unlucky) run; full timed runs live
# in scripts/bench.sh.
cargo bench --offline --no-run -p prescaler-bench
cargo run --release --offline -p prescaler-bench --bin bench_search 3
