#!/usr/bin/env bash
# Tier-1 gate: release build, full workspace test suite, lints, formatting.
# Everything runs offline — external crates are vendored as shims under
# crates/compat/, so no registry access is needed (or attempted).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --workspace --offline
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo fmt --all --check
