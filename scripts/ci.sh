#!/usr/bin/env bash
# Tier-1 gate: release build, full workspace test suite, lints, formatting.
# Everything runs offline — external crates are vendored as shims under
# crates/compat/, so no registry access is needed (or attempted).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --workspace --offline
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo fmt --all --check

# Seeded fault matrix: the guard, pipeline, crash-resume, and
# system-drift property suites replayed under fixed seeds, so every CI
# run explores the same three fault universes deterministically (the
# suites mix the seed into their generated fault plans via
# PRESCALER_FAULT_SEED). The crash-resume suite kills a durable tune at
# every trial boundary — under clean, torn-tail, and garbage-tail
# shutdowns — and requires the resumed result to be bit-identical with
# zero journaled trials re-executed. The drift suite throttles, starves,
# and unplugs the serving system and requires TOQ-or-fallback serving,
# typed device-loss errors, fingerprint-bound snapshots, and warm
# re-tunes that are bit-identical to cold ones at strictly fewer
# executions.
for seed in 1 2 3; do
    PRESCALER_FAULT_SEED=$seed \
        cargo test -q --offline \
        --test guard_properties --test pipeline_properties \
        --test crash_resume_properties --test drift_properties
done

# Crash-resume smoke: kill one tune at a seeded boundary with a seeded
# tear, resume it, and byte-compare the resumed Tuned snapshot against
# the uninterrupted reference. Drift-failover smoke: lose the device
# mid-serve, fail over, revalidate, warm re-tune for the throttled
# system, and serve again — every guarantee self-asserted.
for seed in 1 2 3; do
    PRESCALER_FAULT_SEED=$seed \
        cargo run --release --offline --example crash_resume
    PRESCALER_FAULT_SEED=$seed \
        cargo run --release --offline --example drift_failover
done

# The guarded-serving example doubles as an end-to-end smoke test: it
# asserts its own breaker-trip / recovery / accounting guarantees.
cargo run --release --offline --example guarded_serving

# Benchmarks must keep compiling, and the search benchmark binary doubles
# as a perf smoke test (trial/cache accounting asserted deterministic).
# Three iterations so the recorded BENCH_search.json min is taken over a
# real sample, not a single (possibly unlucky) run; full timed runs live
# in scripts/bench.sh.
cargo bench --offline --no-run -p prescaler-bench
cargo run --release --offline -p prescaler-bench --bin bench_search 3
