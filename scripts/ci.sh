#!/usr/bin/env bash
# Tier-1 gate: release build, full workspace test suite, lints, formatting.
# Everything runs offline — external crates are vendored as shims under
# crates/compat/, so no registry access is needed (or attempted).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --workspace --offline
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo fmt --all --check

# Seeded fault matrix: the guard and pipeline property suites replayed
# under fixed seeds, so every CI run explores the same three fault
# universes deterministically (guard_properties mixes the seed into its
# generated fault plans via PRESCALER_FAULT_SEED).
for seed in 1 2 3; do
    PRESCALER_FAULT_SEED=$seed \
        cargo test -q --offline --test guard_properties --test pipeline_properties
done

# The guarded-serving example doubles as an end-to-end smoke test: it
# asserts its own breaker-trip / recovery / accounting guarantees.
cargo run --release --offline --example guarded_serving

# Benchmarks must keep compiling, and the search benchmark binary doubles
# as a perf smoke test (one tune, trial/cache accounting asserted
# deterministic). Full timed runs live in scripts/bench.sh.
cargo bench --offline --no-run -p prescaler-bench
cargo run --release --offline -p prescaler-bench --bin bench_search 1
