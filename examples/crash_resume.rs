//! Resume-after-crash quickstart: a durable tune is killed mid-search by
//! an injected crash (with a torn tail-write, like a real `kill -9`
//! during `write(2)`), then resumed from its write-ahead journal — and
//! the resumed result is **byte-identical** to an uninterrupted run,
//! with every journaled trial answered from the replayed cache instead
//! of re-executed.
//!
//! ```text
//! cargo run --release --example crash_resume
//! PRESCALER_FAULT_SEED=2 cargo run --release --example crash_resume
//! ```

use prescaler_core::recovery::{tune_durable, tune_durable_with_crash};
use prescaler_core::{PreScaler, SystemInspector};
use prescaler_faults::CrashPoint;
use prescaler_polybench::{BenchKind, PolyApp};
use prescaler_sim::SystemModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::var("PRESCALER_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    let system = SystemModel::system1();
    let db = SystemInspector::inspect(&system);
    let tuner = PreScaler::new(&system, &db, 0.9);
    let app = PolyApp::tiny(BenchKind::Gemm);

    let dir = std::env::temp_dir().join(format!(
        "prescaler_crash_resume_demo_{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir)?;

    // 1. Uninterrupted reference: tune to completion, snapshot the result.
    let ref_journal = dir.join("reference.wal");
    let reference = tune_durable(&tuner, &app, &ref_journal)?;
    let executions = reference.stats.executions as u64;
    let ref_snap = dir.join("reference.tuned");
    reference.tuned.save(&ref_snap)?;
    println!(
        "reference tune: {} trials, {} executions, speedup {:.2}x @ quality {:.4}",
        reference.tuned.trials,
        executions,
        reference.tuned.speedup(),
        reference.tuned.eval.quality
    );

    // 2. Arm a seeded crash point: the process "dies" at a seeded trial
    //    boundary, possibly tearing the record it was writing.
    let crash = CrashPoint::seeded(seed, executions);
    let boundary = crash.boundary();
    let journal = dir.join("interrupted.wal");
    let killed = tune_durable_with_crash(&tuner, &app, &journal, Some(crash))?;
    assert!(killed.is_none(), "the armed crash fires mid-tune");
    println!(
        "crash injected at trial boundary {boundary}/{executions} (seed {seed}, tear {:?}); journal left on disk",
        CrashPoint::seeded(seed, executions).tear()
    );

    // 3. Resume: reopen the same journal path. Recovery scans it, drops
    //    any torn tail, replays the surviving records into the trial
    //    cache, and the search replays deterministically on top.
    let resumed = tune_durable(&tuner, &app, &journal)?;
    println!(
        "resumed: replayed {} journaled trials, re-executed {} ({} saved){}",
        resumed.replayed,
        resumed.stats.executions,
        executions - resumed.stats.executions as u64,
        if resumed.recovery.repaired() {
            " — torn tail repaired"
        } else {
            ""
        }
    );

    // 4. The guarantee: the resumed snapshot is byte-identical to the
    //    uninterrupted one.
    let resumed_snap = dir.join("resumed.tuned");
    resumed.tuned.save(&resumed_snap)?;
    let a = std::fs::read(&ref_snap)?;
    let b = std::fs::read(&resumed_snap)?;
    assert_eq!(
        a, b,
        "resumed Tuned must be byte-identical to the reference"
    );
    println!(
        "resumed Tuned snapshot is byte-identical to the reference ({} bytes)",
        a.len()
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
