//! Static precision-safety analysis in action: trial-free pruning.
//!
//! Runs the PreScaler search twice on benchmarks whose default inputs
//! provably overflow half precision — once with static value-range
//! pruning (the default), once without — and shows that the decision is
//! bit-identical while the pruned search pays for strictly fewer trials.
//! The proven value ranges then seed the runtime guard's magnitude
//! envelopes as priors.
//!
//! ```text
//! cargo run --release --example static_prune
//! ```

use prescaler_core::{profile_app, PreScaler, StaticAnalysis, SystemInspector, TrialEngine};
use prescaler_guard::{Guard, GuardPolicy};
use prescaler_ir::{Precision, PrecisionVerdict};
use prescaler_ocl::HostApp;
use prescaler_polybench::{BenchKind, InputSet, PolyApp};
use prescaler_sim::SystemModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = SystemModel::system1();
    let db = SystemInspector::inspect(&system);

    let mut total_pruned = 0usize;
    for kind in [BenchKind::Gemm, BenchKind::TwoMM, BenchKind::Bicg] {
        // Default polybench inputs are uniform in (0, 513): the inner
        // products overflow f16's 65504 — a proof the analysis finds
        // without running anything.
        let app = PolyApp::scaled(kind, InputSet::Default, 0.1);
        let profile = profile_app(&app, &system)?;

        // What the dataflow proves, per memory object.
        let analysis = StaticAnalysis::of(&app.program(), &profile);
        println!("{}:", app.name());
        for label in analysis.labels() {
            match analysis.verdict(label, Precision::Half) {
                PrecisionVerdict::ProvenUnsafe(reason) => {
                    println!("  {label:<6} -> half is proven unsafe: {reason}");
                }
                PrecisionVerdict::SafeDemote => {
                    println!("  {label:<6} -> half is proven safe");
                }
                PrecisionVerdict::Unknown => {
                    println!("  {label:<6} -> unknown, trials decide");
                }
            }
        }

        // Same decision, fewer trials.
        let on = PreScaler::new(&system, &db, 0.9)
            .tune_with_engine(&TrialEngine::new(&app, &system, &profile));
        let off = PreScaler::new(&system, &db, 0.9)
            .without_static_prune()
            .tune_with_engine(&TrialEngine::new(&app, &system, &profile));
        assert_eq!(
            on.decision_digest(),
            off.decision_digest(),
            "pruning must never change the decision"
        );
        println!(
            "  pruned {} candidates statically: {} trials vs {} without, same decision \
             (digest {:016x})\n",
            on.pruned_static,
            on.trials,
            off.trials,
            on.decision_digest()
        );
        total_pruned += on.pruned_static;

        // The proven ranges become guard envelope priors: production
        // values the analysis already admits can never trip the guard.
        let priors = analysis.envelope_priors();
        let mut guard = Guard::new(&app, &system, on.config.clone(), GuardPolicy::default())?
            .with_envelope_priors(&priors);
        let verdict = guard.run_production(|gain| {
            PolyApp::scaled(kind, InputSet::Default, 0.1).with_input_gain(gain)
        })?;
        assert!(!verdict.degraded, "clean production run tripped the guard");
    }

    assert!(total_pruned > 0, "no candidate was pruned statically");
    println!("total candidates pruned without paying a trial: {total_pruned}");
    Ok(())
}
