//! System adaptivity: the same application tuned on all three paper
//! systems plus a bandwidth-starved variant, showing how the chosen
//! configuration tracks hardware characteristics (paper §5.2 / §5.4).
//!
//! ```text
//! cargo run --release --example system_comparison
//! ```

use prescaler_core::report::type_distribution;
use prescaler_core::{PreScaler, SystemInspector};
use prescaler_polybench::{BenchKind, InputSet, PolyApp};
use prescaler_sim::SystemModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut systems = SystemModel::paper_systems();
    systems.push(SystemModel::system1().with_pcie_lanes(8));

    // MVT: a data-intensive benchmark with a tiny value range (0..2), so
    // every precision passes TOQ and the choice is purely about speed.
    let app = PolyApp::scaled(BenchKind::Mvt, InputSet::Default, 0.5);

    println!("MVT tuned per system (TOQ 0.9):\n");
    println!(
        "{:<44} {:>8} {:>8} {:>6} {:>18}",
        "system", "speedup", "quality", "trials", "types (h/s/d)"
    );
    for system in &systems {
        let db = SystemInspector::inspect(system);
        let tuned = PreScaler::new(system, &db, 0.9).tune(&app)?;
        let ty = type_distribution(&tuned.profile, &tuned.config);
        println!(
            "{:<44} {:>7.2}x {:>8.4} {:>6} {:>18}",
            system.name,
            tuned.speedup(),
            tuned.eval.quality,
            tuned.trials,
            format!("{}/{}/{}", ty.half, ty.single, ty.double),
        );
    }

    println!(
        "\nExpectations from the paper: the x8 variant gains more than x16 \
         (transfer dominates, so lower precisions pay off more), and the \
         fast-FP16 systems (V100, 2080 Ti) scale more objects to half than \
         the Titan Xp, whose FP16 arithmetic is slower than its FP64."
    );
    Ok(())
}
