//! System-drift failover quickstart: the serving system changes out from
//! under a tuned configuration and the stack walks the full recovery
//! loop — **Serving → Suspect → Fallback → Retuning → Serving** — without
//! ever serving below TOQ:
//!
//! 1. a spec tuned on the healthy system serves guarded production runs;
//! 2. the GPU falls off the bus mid-serve: the run dies with a *typed*
//!    `DeviceLost`, the guard engages its sticky full-precision fallback
//!    and raises the revalidation flag;
//! 3. `revalidate` replays the tuner's acceptance oracle and pronounces
//!    the old spec `Unrunnable` on the dead system;
//! 4. the device re-seats but comes back thermally throttled — a changed
//!    system, same hardware fingerprint — and `retune_warm` re-tunes for
//!    it, journaling every trial; a second warm pass replays that journal
//!    and charges strictly fewer executions for a bit-identical spec;
//! 5. a fresh guard serves the re-tuned spec on the throttled system and
//!    certifies TOQ (or is on the baseline fallback).
//!
//! ```text
//! cargo run --release --example drift_failover
//! PRESCALER_FAULT_SEED=2 cargo run --release --example drift_failover
//! ```

use prescaler_core::{retune_warm, revalidate, DriftVerdict, PreScaler, SystemInspector};
use prescaler_guard::{Guard, GuardPolicy};
use prescaler_ocl::OclError;
use prescaler_polybench::{BenchKind, PolyApp};
use prescaler_sim::{FaultPlan, SystemModel};

fn corr(gain: f64) -> PolyApp {
    PolyApp::tiny(BenchKind::Corr).with_input_gain(gain)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::var("PRESCALER_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    // --- Serving: tune on the healthy system, serve guarded runs. -------
    let healthy = SystemModel::system1();
    let db = SystemInspector::inspect(&healthy);
    let tuned = PreScaler::new(&healthy, &db, 0.9).tune(&corr(1.0))?;
    println!(
        "tuned on healthy system: speedup {:.2}x @ quality {:.4} (fingerprint {:016x})",
        tuned.speedup(),
        tuned.eval.quality,
        tuned.system_fingerprint
    );

    let mut guard = Guard::new(
        &corr(1.0),
        &healthy,
        tuned.config.clone(),
        GuardPolicy::for_tuned(&tuned),
    )?;
    for _ in 0..4 {
        let v = guard.run_production(corr)?;
        assert!(!v.degraded, "healthy serving stays on the tuned spec");
    }
    println!("served {} healthy production runs", guard.report().runs);

    // --- Suspect → Fallback: the GPU falls off the bus mid-serve. -------
    let dead = healthy
        .clone()
        .with_faults(FaultPlan::seeded(seed).with_device_loss(1.0));
    assert_eq!(
        dead.fingerprint(),
        healthy.fingerprint(),
        "drift is a condition of the same hardware, not a hardware change"
    );
    let mut guard = Guard::new(
        &corr(1.0),
        &dead,
        tuned.config.clone(),
        GuardPolicy::for_tuned(&tuned),
    )?;
    let err = guard
        .run_production(corr)
        .expect_err("a lost device cannot serve");
    assert!(matches!(err, OclError::DeviceLost { .. }));
    assert!(guard.fallback_active(), "failover engages before recovery");
    assert!(
        guard.revalidation_due(),
        "the sentinel demands revalidation"
    );
    println!("device lost mid-serve: {err} -> fallback engaged, revalidation due");

    let tuner_dead = PreScaler::new(&dead, &db, 0.9);
    let reval = revalidate(
        &tuner_dead,
        &corr(1.0),
        &tuned.config,
        tuned.system_fingerprint,
    )?;
    assert_eq!(reval.verdict, DriftVerdict::Unrunnable);
    println!(
        "revalidation verdict on the dead system: {:?}",
        reval.verdict
    );
    guard.acknowledge_revalidation();

    // --- Retuning: the device re-seats, but comes back throttled. -------
    let throttled = healthy
        .clone()
        .with_faults(FaultPlan::seeded(seed ^ 0xD1F7).with_throttle(0.6, 0.5));
    let tuner = PreScaler::new(&throttled, &db, 0.9);
    let dir = std::env::temp_dir().join(format!("prescaler_drift_failover_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let journal = dir.join("retune.wal");
    std::fs::remove_file(&journal).ok();

    let first = retune_warm(&tuner, &corr(1.0), &tuned.config, &journal)?;
    println!(
        "re-tuned for the throttled system: {} executions journaled, previous spec was {:?}, new speedup {:.2}x",
        first.stats.executions,
        first.previous.verdict,
        first.tuned.speedup()
    );

    // A later warm pass (say, after another interruption) replays the
    // journal: bit-identical answer, strictly fewer executions charged.
    let second = retune_warm(&tuner, &corr(1.0), &tuned.config, &journal)?;
    assert!(second.replayed > 0, "the journal must replay");
    assert_eq!(second.tuned.config, first.tuned.config, "bit-identical");
    assert!(
        second.stats.executions < first.stats.executions,
        "warm {} !< cold {}",
        second.stats.executions,
        first.stats.executions
    );
    println!(
        "second warm pass: replayed {} trials, charged {} executions ({} saved)",
        second.replayed,
        second.stats.executions,
        first.stats.executions - second.stats.executions
    );

    // --- Serving again: guard the re-tuned spec on the new system. ------
    let retuned = second.tuned;
    assert!(retuned.speedup() >= 1.0, "never worse than baseline");
    let mut guard = Guard::new(
        &corr(1.0),
        &throttled,
        retuned.config.clone(),
        GuardPolicy::for_tuned(&retuned),
    )?;
    for _ in 0..4 {
        guard.run_production(corr)?;
    }
    let quality = guard.verify(corr)?;
    assert!(
        quality >= 0.9 || guard.fallback_active(),
        "guarded serving never certifies below TOQ without the fallback"
    );
    println!(
        "serving resumed on the throttled system: certified quality {quality:.4}{}",
        if guard.fallback_active() {
            " (baseline fallback)"
        } else {
            ""
        }
    );

    std::fs::remove_dir_all(&dir).ok();
    println!("\nall failover guarantees held");
    Ok(())
}
