//! Quickstart: tune one benchmark with PreScaler and print the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use prescaler_core::{PreScaler, SystemInspector};
use prescaler_polybench::{BenchKind, InputSet, PolyApp};
use prescaler_sim::SystemModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a (simulated) heterogeneous system — the paper's System 1:
    //    a 10-core Xeon plus a Titan Xp behind PCIe 3.0 x16.
    let system = SystemModel::system1();

    // 2. Run the one-time system inspection. On real hardware this takes
    //    hours; on the virtual system it is instantaneous, but the
    //    contract is identical: a database of {conversion method ×
    //    type-path × size} → time, consulted instead of execution trials.
    let db = SystemInspector::inspect(&system);
    println!(
        "inspected `{}`: {} conversion curves, fast FP16: {}",
        db.summary.name,
        db.curve_count(),
        db.summary.fast_fp16,
    );

    // 3. Tune an application. GEMM with its default (large-valued) inputs
    //    is a good showcase: half precision overflows, so the tuner must
    //    find a mixed configuration.
    let app = PolyApp::scaled(BenchKind::Gemm, InputSet::Default, 0.5);
    let tuner = PreScaler::new(&system, &db, 0.9);
    let tuned = tuner.tune(&app)?;

    println!(
        "\nGEMM: {:.2}x speedup at quality {:.4} ({} execution trials)",
        tuned.speedup(),
        tuned.eval.quality,
        tuned.trials
    );
    println!(
        "baseline {} -> tuned {}",
        tuned.baseline_time, tuned.eval.time
    );

    // 4. Inspect the chosen configuration.
    println!("\nchosen configuration:");
    for obj in &tuned.profile.scaling_order {
        let target = tuned.config.target_for(&obj.label, obj.original);
        let write = tuned
            .config
            .write_plans
            .get(&obj.label)
            .map(|p| format!("wire {} via {}", p.intermediate, p.host_method.label()));
        println!(
            "  {:<6} {} -> {}  {}",
            obj.label,
            obj.original,
            target,
            write.unwrap_or_default()
        );
    }
    Ok(())
}
