//! Serving under load: the README's multi-worker serving quickstart.
//!
//! A half-precision GEMM configuration serves a seeded arrival trace
//! through the `prescaler-serve` front-end while the fault plan injects
//! drifting inputs *and* overload bursts. The session demonstrates the
//! overload contract end to end:
//!
//! * every arrival is accounted for — served, or rejected with a typed
//!   `ServeError` (queue full / deadline / shutting down / device lost);
//! * the bounded admission queue never exceeds its capacity;
//! * admitted requests keep full TOQ-or-fallback guard semantics, and
//!   sustained shedding raises the guard's revalidation request instead
//!   of demoting precision;
//! * per-request outcomes are **bit-identical at any worker count** —
//!   the example serves the same trace at 1, 2, and 8 workers and diffs
//!   the outcome streams.
//!
//! ```text
//! cargo run --release --example serve_under_load
//! PRESCALER_FAULT_SEED=2 cargo run --release --example serve_under_load
//! PRESCALER_SERVE_WORKERS=8 cargo run --release --example serve_under_load
//! ```
//!
//! With `PRESCALER_SERVE_WORKERS` set, only that worker count runs and
//! the outcome digest is printed for cross-process diffing (the CI
//! stress step runs 1/2/8 and compares the digests).

use prescaler_guard::{Guard, GuardPolicy};
use prescaler_ir::Precision;
use prescaler_ocl::ScalingSpec;
use prescaler_polybench::{BenchKind, Dims, InputSet, PolyApp};
use prescaler_serve::{ArrivalTrace, ServeConfig, ServeRun, Server};
use prescaler_sim::{FaultPlan, SimTime, SystemModel};

fn gemm(gain: f64) -> PolyApp {
    PolyApp::new(BenchKind::Gemm, Dims::square(16), InputSet::Random, 7).with_input_gain(gain)
}

fn serve_at(
    workers: usize,
    system: &SystemModel,
    tuned: &ScalingSpec,
    trace: &ArrivalTrace,
    deadline: SimTime,
) -> Result<ServeRun, prescaler_ocl::OclError> {
    let guard = Guard::new(&gemm(1.0), system, tuned.clone(), GuardPolicy::default())?;
    let config = ServeConfig {
        queue_capacity: 2,
        deadline,
        workers,
        overload_shed_tolerance: 4,
    };
    let server = Server::new(guard, config);
    let run = server.serve(trace, gemm);

    let s = &run.report.summary;
    println!(
        "workers={workers}: {} arrivals -> {} served ({} degraded), shed {} queue-full + {} deadline + {} shutdown, {} device-lost; peak queue {} (bound {}), makespan {:.3}s",
        s.arrivals,
        s.served,
        s.degraded_served,
        s.shed_queue_full,
        s.shed_deadline,
        s.shed_shutdown,
        s.failed_device_lost,
        s.peak_queue_depth,
        config.queue_capacity,
        s.makespan_secs,
    );

    // The overload contract, self-asserted.
    assert_eq!(s.accounted(), s.arrivals, "every arrival has a typed fate");
    assert!(
        s.peak_queue_depth <= config.queue_capacity as u64,
        "bounded queue"
    );
    assert!(s.shed() > 0, "this trace is built to overload the queue");
    if s.shed_queue_full + s.shed_deadline >= config.overload_shed_tolerance {
        assert!(
            s.overload_revalidation && server.guard().revalidation_due(),
            "sustained shedding must demand revalidation"
        );
    }
    assert_eq!(
        run.report.guard.demotions, 0,
        "overload never demotes precision (quality is not shed)"
    );
    for outcome in &run.outcomes {
        if let Ok(served) = &outcome.result {
            if let Some(q) = served.canary_quality {
                assert!(
                    q >= 0.9 || run.report.guard.fallback,
                    "TOQ-or-fallback for every admitted request"
                );
            }
        }
    }
    Ok(run)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::var("PRESCALER_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    let tuned = ScalingSpec::baseline()
        .with_target("A", Precision::Half)
        .with_target("B", Precision::Half)
        .with_target("C", Precision::Half);

    // Drifting inputs + arrival spikes: every fourth base arrival (in
    // expectation) brings up to 3 extra same-instant requests.
    let plan = FaultPlan::seeded(seed)
        .with_input_drift(0.3, 2.0)
        .with_overload_burst(0.25, 3);
    let system = SystemModel::system1().with_faults(plan);

    // Size the trace against the device: arrivals land ~1.7x faster than
    // the device can serve, so the bounded queue must shed.
    let probe = prescaler_guard::speculate(&system.without_faults(), &tuned, 0, gemm);
    let service = probe
        .result
        .map_err(|e| format!("probe run failed: {e}"))?
        .1
        .timeline
        .total();
    let trace = ArrivalTrace::generate(seed, 40, service * 0.6, &system.faults);
    let deadline = service * 4.0;
    println!(
        "trace: {} requests ({} burst extras), mean service {:.4}s, deadline {:.4}s\n",
        trace.len(),
        trace.burst_extras(),
        service.as_secs(),
        deadline.as_secs(),
    );

    if let Some(workers) = std::env::var("PRESCALER_SERVE_WORKERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        let run = serve_at(workers, &system, &tuned, &trace, deadline)?;
        println!("outcome digest: {:016x}", run.report.outcome_digest);
        return Ok(());
    }

    let one = serve_at(1, &system, &tuned, &trace, deadline)?;
    let two = serve_at(2, &system, &tuned, &trace, deadline)?;
    let eight = serve_at(8, &system, &tuned, &trace, deadline)?;
    assert_eq!(
        one.outcomes, two.outcomes,
        "1 vs 2 workers must be bit-identical"
    );
    assert_eq!(
        one.outcomes, eight.outcomes,
        "1 vs 8 workers must be bit-identical"
    );
    assert_eq!(one.report.outcome_digest, eight.report.outcome_digest);
    println!(
        "\nper-request outcomes bit-identical at 1/2/8 workers (digest {:016x})",
        one.report.outcome_digest
    );
    Ok(())
}
