//! Guarded serving: the README's runtime quality sentinel example.
//!
//! A half-precision GEMM configuration serves a drifting workload. When
//! input magnitudes grow past what binary16 can hold, the guard's online
//! NaN/Inf scan trips a full-precision canary, the offending memory
//! object's circuit breaker demotes it one precision step, and quality
//! recovers — all deterministic and replayable from the fault seed. Once
//! the drift subsides, cooldown and half-open probing walk the object
//! back to its tuned precision.

use prescaler_guard::{Guard, GuardAction, GuardPolicy};
use prescaler_ir::Precision;
use prescaler_ocl::ScalingSpec;
use prescaler_polybench::{BenchKind, Dims, InputSet, PolyApp};
use prescaler_sim::{FaultPlan, SimTime, SystemModel};

fn gemm(gain: f64) -> PolyApp {
    PolyApp::new(BenchKind::Gemm, Dims::square(16), InputSet::Random, 7).with_input_gain(gain)
}

fn main() -> Result<(), prescaler_ocl::OclError> {
    // The "tuned" configuration: every GEMM object in binary16. On the
    // tuning inputs this comfortably clears TOQ = 0.9.
    let tuned = ScalingSpec::baseline()
        .with_target("A", Precision::Half)
        .with_target("B", Precision::Half)
        .with_target("C", Precision::Half);

    // Production system with seeded, replayable input drift: 40% of runs
    // see their inputs scaled by a gain in [256, 511] — far past what
    // binary16 partial sums survive.
    let drifting = FaultPlan::seeded(42).with_input_drift(0.4, 510.0);
    let system = SystemModel::system1().with_faults(drifting);

    let mut guard = Guard::new(&gemm(1.0), &system, tuned, GuardPolicy::default())?;

    println!("run  gain    nonfinite  canary-q  state");
    for _ in 0..24 {
        let v = guard.run_production(gemm)?;
        println!(
            "{:>3}  {:>6.1}  {:>9}  {}  {}",
            v.run,
            v.gain,
            v.nonfinite,
            v.canary_quality
                .map_or_else(|| "   --   ".to_owned(), |q| format!("{q:>8.4}")),
            if v.degraded { "degraded" } else { "tuned" },
        );
        for a in &v.actions {
            match a {
                GuardAction::Demoted { label, from, to } => {
                    println!("     ! breaker opened: {label} demoted {from:?} -> {to:?}");
                }
                GuardAction::Promoted { label, from, to } => {
                    println!("     ^ breaker probing: {label} promoted {from:?} -> {to:?}");
                }
                GuardAction::FallbackEngaged => {
                    println!("     # global breaker: full-precision fallback engaged");
                }
                GuardAction::RevalidationRequested { reason } => {
                    println!("     ? system drift suspected ({reason:?}): revalidation due");
                }
            }
        }
    }

    // Certify the session: after verify, quality >= TOQ or fallback.
    let quality = guard.verify(gemm)?;
    let report = guard.report();
    println!("\n--- guarded serving report ---");
    println!("production runs      : {}", report.runs);
    println!(
        "canary runs          : {} ({:.3}s charged to guard overhead)",
        report.canary_runs,
        report.timeline.guard_overhead.as_secs()
    );
    println!(
        "demotions/promotions : {}/{}",
        report.demotions, report.promotions
    );
    println!(
        "degraded runs        : {} ({:.3}s)",
        report.degraded_runs,
        report.degraded_time.as_secs()
    );
    println!("fallback engaged     : {}", report.fallback);
    println!("certified quality    : {quality:.4}");

    // The guarantees this example demonstrates:
    assert!(
        report.demotions > 0,
        "sustained drift must trip at least one breaker"
    );
    assert!(
        quality >= 0.9 || guard.fallback_active(),
        "guarded serving never ends below TOQ without the baseline fallback"
    );
    assert!(
        report.timeline.guard_overhead > SimTime::ZERO,
        "canary cost is accounted, not hidden"
    );
    println!("\nall guarantees held");
    Ok(())
}
