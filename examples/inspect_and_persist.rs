//! The one-time system inspection, persisted and reloaded — the workflow
//! of the paper's artifact, where inspection takes hours and its result
//! database is shipped with the evaluation systems.
//!
//! ```text
//! cargo run --release --example inspect_and_persist
//! ```

use prescaler_core::{InspectorDb, SystemInspector};
use prescaler_ir::Precision;
use prescaler_sim::{Direction, SystemModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;

    for (tag, system) in [
        ("system1", SystemModel::system1()),
        ("system2", SystemModel::system2()),
        ("system3", SystemModel::system3()),
    ] {
        let path = dir.join(format!("inspector_{tag}.json"));
        // Inspect once; afterwards always load from disk.
        let db = if path.exists() {
            println!("loading cached inspection from {}", path.display());
            InspectorDb::load(&path)?
        } else {
            let t0 = std::time::Instant::now();
            let db = SystemInspector::inspect(&system);
            db.save(&path)?;
            println!(
                "inspected {} in {:.1?} ({} curves) -> {}",
                system.name,
                t0.elapsed(),
                db.curve_count(),
                path.display()
            );
            db
        };

        // Ask the database the question Algorithm 2 asks: the best way to
        // ship 4M doubles to the device as halves.
        let (key, t) = db
            .best_plan(
                Direction::HtoD,
                Precision::Double,
                Precision::Half,
                4 << 20,
                &Precision::ALL,
            )
            .expect("path is in the database");
        println!(
            "  best double->half HtoD @4M elems: wire {} via {} (predicted {})",
            key.intermediate,
            key.host_method.label(),
            t
        );
    }
    Ok(())
}
