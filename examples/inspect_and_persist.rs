//! The one-time system inspection, persisted and reloaded — the workflow
//! of the paper's artifact, where inspection takes hours and its result
//! database is shipped with the evaluation systems.
//!
//! The database now lives under an atomic, checksummed snapshot container
//! (temp file + fsync + rename), so a crash mid-save can never leave a
//! half-written file — and a damaged file is *detected* at load as a
//! typed error instead of being silently trusted. The second half of
//! this example injects exactly that damage and shows the detection.
//!
//! ```text
//! cargo run --release --example inspect_and_persist
//! ```

use prescaler_core::{InspectorDb, SystemInspector};
use prescaler_ir::Precision;
use prescaler_persist::PersistError;
use prescaler_sim::{Direction, SystemModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;

    let mut demo_path = None;
    for (tag, system) in [
        ("system1", SystemModel::system1()),
        ("system2", SystemModel::system2()),
        ("system3", SystemModel::system3()),
    ] {
        let path = dir.join(format!("inspector_{tag}.json"));
        // Inspect once; afterwards always load from disk. Databases saved
        // by older builds (bare JSON, no container) still load through
        // the legacy fallback.
        let db = if path.exists() {
            println!("loading cached inspection from {}", path.display());
            InspectorDb::load(&path)?
        } else {
            let t0 = std::time::Instant::now();
            let db = SystemInspector::inspect(&system);
            db.save(&path)?;
            println!(
                "inspected {} in {:.1?} ({} curves) -> {}",
                system.name,
                t0.elapsed(),
                db.curve_count(),
                path.display()
            );
            db
        };
        demo_path.get_or_insert(path);

        // Ask the database the question Algorithm 2 asks: the best way to
        // ship 4M doubles to the device as halves.
        let (key, t) = db
            .best_plan(
                Direction::HtoD,
                Precision::Double,
                Precision::Half,
                4 << 20,
                &Precision::ALL,
            )
            .expect("path is in the database");
        println!(
            "  best double->half HtoD @4M elems: wire {} via {} (predicted {})",
            key.intermediate,
            key.host_method.label(),
            t
        );
    }

    // --- Corruption drill: damaged databases are detected, not trusted. ---
    // Re-save one database into a scratch snapshot container and damage
    // that copy; the cached inspections above stay intact.
    let source = demo_path.expect("at least one system inspected");
    let db = InspectorDb::load(&source)?;
    let scratch = std::env::temp_dir().join("prescaler_inspect_corruption_demo.snap");
    db.save(&scratch)?;
    let bytes = std::fs::read(&scratch)?;

    // A truncated file (torn write, partial copy) fails with a typed error.
    std::fs::write(&scratch, &bytes[..bytes.len() * 2 / 3])?;
    match InspectorDb::load(&scratch) {
        Err(e @ PersistError::Truncated { .. }) => {
            println!("truncated copy rejected as expected: {e}");
        }
        other => panic!("truncation must be detected, got {other:?}"),
    }

    // A single flipped byte (bit rot) fails the payload checksum.
    let mut flipped = bytes.clone();
    let at = flipped.len() - 50;
    flipped[at] ^= 0x10;
    std::fs::write(&scratch, &flipped)?;
    match InspectorDb::load(&scratch) {
        Err(e @ PersistError::ChecksumMismatch { .. }) => {
            println!("bit-flipped copy rejected as expected: {e}");
        }
        other => panic!("bit rot must be detected, got {other:?}"),
    }
    std::fs::remove_file(&scratch).ok();
    println!("corruption drill passed: damaged databases never load silently");
    Ok(())
}
