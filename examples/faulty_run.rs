//! Tuning on an unreliable system: the README's fault-injection example.
//!
//! Injects seeded transient transfer failures and clock noise, then shows
//! the degradation guarantees holding: transient faults are retried (and
//! charged to the timeline), and the chosen configuration still meets TOQ
//! or falls back to full precision — never slower than the clean baseline.

use prescaler_core::{PreScaler, SystemInspector};
use prescaler_polybench::{BenchKind, InputSet, PolyApp};
use prescaler_sim::{FaultPlan, SystemModel};

fn main() -> Result<(), prescaler_ocl::OclError> {
    let system = SystemModel::system1().with_faults(
        FaultPlan::seeded(7)
            .with_transfer_failures(0.1) // 10% of transfers bounce (retried)
            .with_clock_noise(0.2), //     ±20% timing jitter
    );
    let db = SystemInspector::inspect(&system);
    let app = PolyApp::paper(BenchKind::Gemm, InputSet::Default);

    let tuned = PreScaler::new(&system, &db, 0.9).tune(&app)?;
    println!(
        "faulty system : {:.2}x speedup at quality {:.3} ({} trials{})",
        tuned.speedup(),
        tuned.eval.quality,
        tuned.trials,
        if tuned.config.is_baseline() {
            ", full-precision fallback"
        } else {
            ""
        },
    );

    // Same tuning on the clean twin, for comparison.
    let clean = system.without_faults();
    let clean_db = SystemInspector::inspect(&clean);
    let reference = PreScaler::new(&clean, &clean_db, 0.9).tune(&app)?;
    println!(
        "clean system  : {:.2}x speedup at quality {:.3} ({} trials)",
        reference.speedup(),
        reference.eval.quality,
        reference.trials,
    );

    // The guarantees the property suite enforces for *every* fault plan:
    assert!(tuned.eval.quality >= 0.9 || tuned.config.is_baseline());
    assert!(tuned.speedup() >= 1.0);
    println!("guarantees hold: TOQ met (or baseline fallback), speedup >= 1");
    Ok(())
}
