//! Bring-your-own application: write a kernel in the IR DSL, drive it
//! through the mini OpenCL runtime, and let PreScaler tune it — the
//! workflow the paper's appendix describes for "other OpenCL applications".
//!
//! The application here is a Jacobi-style smoothing filter: repeated
//! neighbour averaging over a 1-D field, a pattern whose values stay
//! small, so aggressive precision scaling is safe.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use prescaler_core::{PreScaler, SystemInspector};
use prescaler_ir::dsl::*;
use prescaler_ir::{Access, FloatVec, Precision, Program};
use prescaler_ocl::{HostApp, KernelArg, OclError, Outputs, Session};
use prescaler_sim::SystemModel;

/// A five-point smoothing filter applied `steps` times.
struct Smoother {
    n: usize,
    steps: usize,
}

impl HostApp for Smoother {
    fn name(&self) -> &str {
        "smoother"
    }

    fn program(&self) -> Program {
        // out[i] = 0.25*in[i-1] + 0.5*in[i] + 0.25*in[i+1], edges kept.
        let k = kernel("smooth")
            .buffer("input", Precision::Double, Access::Read)
            .buffer("output", Precision::Double, Access::Write)
            .int_param("n")
            .body(vec![
                let_("i", global_id(0)),
                if_else(
                    gt(var("i"), int(0)),
                    vec![if_else(
                        lt(var("i"), var("n") - int(1)),
                        vec![store(
                            "output",
                            var("i"),
                            flit(0.25) * load("input", var("i") - int(1))
                                + flit(0.5) * load("input", var("i"))
                                + flit(0.25) * load("input", var("i") + int(1)),
                        )],
                        vec![store("output", var("i"), load("input", var("i")))],
                    )],
                    vec![store("output", var("i"), load("input", var("i")))],
                ),
            ]);
        Program::new("smoother").with_kernel(k)
    }

    fn run(&self, session: &mut Session) -> Result<Outputs, OclError> {
        let a = session.create_buffer("FIELD_A", self.n, Precision::Double)?;
        let b = session.create_buffer("FIELD_B", self.n, Precision::Double)?;
        let init: Vec<f64> = (0..self.n).map(|i| (i as f64 * 0.01).sin().abs()).collect();
        session.enqueue_write(a, &FloatVec::from_f64_slice(&init, Precision::Double))?;
        session.enqueue_write(b, &FloatVec::zeros(self.n, Precision::Double))?;

        // Ping-pong between the two fields.
        let (mut src, mut dst) = (a, b);
        for _ in 0..self.steps {
            session.launch_kernel(
                "smooth",
                [self.n, 1],
                &[
                    ("input", KernelArg::Buffer(src)),
                    ("output", KernelArg::Buffer(dst)),
                    ("n", KernelArg::Int(self.n as i64)),
                ],
            )?;
            std::mem::swap(&mut src, &mut dst);
        }
        Ok(vec![("FIELD".to_owned(), session.enqueue_read(src)?)])
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = Smoother {
        n: 1 << 20,
        steps: 8,
    };

    // Print the kernel as the OpenCL-C-like source the IR pretty-printer
    // generates — what PreScaler's code generation would emit.
    println!("{}", prescaler_ir::print::program_to_string(&app.program()));

    let system = SystemModel::system2(); // the DGX Station: fast FP16
    let db = SystemInspector::inspect(&system);
    let tuned = PreScaler::new(&system, &db, 0.95).tune(&app)?;

    println!(
        "smoother on {}: {:.2}x speedup, quality {:.4}, {} trials",
        system.name,
        tuned.speedup(),
        tuned.eval.quality,
        tuned.trials
    );
    for obj in &tuned.profile.scaling_order {
        println!(
            "  {:<8} {} -> {}",
            obj.label,
            obj.original,
            tuned.config.target_for(&obj.label, obj.original)
        );
    }
    Ok(())
}
