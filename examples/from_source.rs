//! An application authored as OpenCL-C-like *source text*: parsed to the
//! IR, type-checked, driven through the runtime, tuned by PreScaler, and
//! the chosen configuration printed back as generated kernel source —
//! the paper's "PreScaler receives a target OpenCL source code" flow.
//!
//! ```text
//! cargo run --release --example from_source
//! ```

use prescaler_core::{PreScaler, SystemInspector};
use prescaler_ir::parse::parse_program;
use prescaler_ir::passes::retype_buffers;
use prescaler_ir::print::kernel_to_string;
use prescaler_ir::typeck::check_program;
use prescaler_ir::{FloatVec, Precision, Program};
use prescaler_ocl::{HostApp, KernelArg, OclError, Outputs, Session};
use prescaler_sim::SystemModel;
use std::collections::HashMap;

const SOURCE: &str = r"
// program: dot-and-norm

__kernel void dot_rows(const __global double* m, const __global double* v,
                       __global double* out, long n) {
    long i = get_global_id(0);
    if (i < n) {
        double acc = 0.0;
        for (long j = 0; j < n; ++j) {
            acc = acc + (m[(i * n) + j] * v[j]);
        }
        out[i] = acc;
    }
}

__kernel void normalize(__global double* out, double scale, long n) {
    long i = get_global_id(0);
    if (i < n) {
        out[i] = (out[i] * scale) / sqrt((1.0 + fabs(out[i])));
    }
}
";

struct DotAndNorm {
    program: Program,
    n: usize,
}

impl HostApp for DotAndNorm {
    fn name(&self) -> &str {
        "dot-and-norm"
    }

    fn program(&self) -> Program {
        self.program.clone()
    }

    fn run(&self, session: &mut Session) -> Result<Outputs, OclError> {
        let n = self.n;
        let m = session.create_buffer("M", n * n, Precision::Double)?;
        let v = session.create_buffer("V", n, Precision::Double)?;
        let out = session.create_buffer("OUT", n, Precision::Double)?;
        let ms: Vec<f64> = (0..n * n).map(|i| ((i % 97) as f64) / 97.0).collect();
        let vs: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) / 13.0).collect();
        session.enqueue_write(m, &FloatVec::from_f64_slice(&ms, Precision::Double))?;
        session.enqueue_write(v, &FloatVec::from_f64_slice(&vs, Precision::Double))?;
        session.launch_kernel(
            "dot_rows",
            [n, 1],
            &[
                ("m", KernelArg::Buffer(m)),
                ("v", KernelArg::Buffer(v)),
                ("out", KernelArg::Buffer(out)),
                ("n", KernelArg::Int(n as i64)),
            ],
        )?;
        session.launch_kernel(
            "normalize",
            [n, 1],
            &[
                ("out", KernelArg::Buffer(out)),
                ("scale", KernelArg::Float(0.125)),
                ("n", KernelArg::Int(n as i64)),
            ],
        )?;
        Ok(vec![("OUT".to_owned(), session.enqueue_read(out)?)])
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse and check the source.
    let program = parse_program(SOURCE)?;
    check_program(&program)?;
    println!(
        "parsed program `{}` with {} kernels",
        program.name,
        program.kernels.len()
    );

    // 2. Tune it.
    let app = DotAndNorm {
        program,
        n: 1 << 11,
    };
    let system = SystemModel::system3();
    let db = SystemInspector::inspect(&system);
    let tuned = PreScaler::new(&system, &db, 0.9).tune(&app)?;
    println!(
        "\n{}: {:.2}x speedup at quality {:.4} ({} trials)\n",
        system.name,
        tuned.speedup(),
        tuned.eval.quality,
        tuned.trials
    );

    // 3. Emit the precision-scaled kernel source the configuration implies
    //    (what the paper's LLVM backend would generate).
    let retype: HashMap<String, Precision> = [("m", "M"), ("v", "V"), ("out", "OUT")]
        .into_iter()
        .filter_map(|(param, label)| {
            let obj = tuned
                .profile
                .scaling_order
                .iter()
                .find(|o| o.label == label)?;
            Some((
                param.to_owned(),
                tuned.config.target_for(label, obj.original),
            ))
        })
        .collect();
    for k in &app.program().kernels {
        let scaled = retype_buffers(k, &retype);
        println!("{}", kernel_to_string(&scaled));
    }
    Ok(())
}
