//! Bit-exactness oracles: at double precision the simulated pipeline must
//! match straightforward Rust implementations of the benchmark math
//! exactly (same accumulation order ⇒ same bits).

use prescaler_ocl::{run_app, ScalingSpec};
use prescaler_polybench::{BenchKind, Dims, InputGen, InputSet, PolyApp};
use prescaler_sim::SystemModel;

fn inputs_for(kind: BenchKind) -> InputGen {
    // PolyApp::tiny uses Default inputs with seed 7.
    InputGen::new(InputSet::Default, kind.default_range(), 7)
}

fn run_tiny(kind: BenchKind) -> (Dims, Vec<(String, Vec<f64>)>) {
    let app = PolyApp::tiny(kind);
    let dims = *app.dims();
    let (outs, _) = run_app(&app, &SystemModel::system1(), &ScalingSpec::baseline()).unwrap();
    (
        dims,
        outs.into_iter().map(|(n, d)| (n, d.to_f64_vec())).collect(),
    )
}

#[test]
fn atax_matches_reference() {
    let (d, outs) = run_tiny(BenchKind::Atax);
    let gen = inputs_for(BenchKind::Atax);
    let n = d.ni;
    let a = gen.array("A", n * n).to_f64_vec();
    let x = gen.array("X", n).to_f64_vec();
    let mut tmp = vec![0.0; n];
    for i in 0..n {
        let mut acc = 0.0;
        for j in 0..n {
            acc += a[i * n + j] * x[j];
        }
        tmp[i] = acc;
    }
    let mut y = vec![0.0; n];
    for (j, slot) in y.iter_mut().enumerate() {
        let mut acc = 0.0;
        for i in 0..n {
            acc += a[i * n + j] * tmp[i];
        }
        *slot = acc;
    }
    assert_eq!(outs[0].1, y, "ATAX must be bit-exact at double");
}

#[test]
fn mvt_matches_reference() {
    let (d, outs) = run_tiny(BenchKind::Mvt);
    let gen = inputs_for(BenchKind::Mvt);
    let n = d.ni;
    let a = gen.array("A", n * n).to_f64_vec();
    let mut x1 = gen.array("X1", n).to_f64_vec();
    let mut x2 = gen.array("X2", n).to_f64_vec();
    let y1 = gen.array("Y1", n).to_f64_vec();
    let y2 = gen.array("Y2", n).to_f64_vec();
    for i in 0..n {
        let mut acc = x1[i];
        for j in 0..n {
            acc += a[i * n + j] * y1[j];
        }
        x1[i] = acc;
    }
    for i in 0..n {
        let mut acc = x2[i];
        for j in 0..n {
            acc += a[j * n + i] * y2[j];
        }
        x2[i] = acc;
    }
    assert_eq!(outs[0].1, x1, "MVT x1");
    assert_eq!(outs[1].1, x2, "MVT x2");
}

#[test]
fn gesummv_matches_reference() {
    let (d, outs) = run_tiny(BenchKind::Gesummv);
    let gen = inputs_for(BenchKind::Gesummv);
    let n = d.ni;
    let a = gen.array("A", n * n).to_f64_vec();
    let b = gen.array("B", n * n).to_f64_vec();
    let x = gen.array("X", n).to_f64_vec();
    let (alpha, beta) = (1.5, 1.2);
    let mut y = vec![0.0; n];
    for (i, slot) in y.iter_mut().enumerate() {
        let mut t = 0.0;
        let mut u = 0.0;
        for j in 0..n {
            t += a[i * n + j] * x[j];
            u += b[i * n + j] * x[j];
        }
        *slot = alpha * t + beta * u;
    }
    assert_eq!(outs[0].1, y, "GESUMMV");
}

#[test]
fn syrk_matches_reference() {
    let (d, outs) = run_tiny(BenchKind::Syrk);
    let gen = inputs_for(BenchKind::Syrk);
    let (n, m) = (d.ni, d.nj);
    let a = gen.array("A", n * m).to_f64_vec();
    let c0 = gen.array("C", n * n).to_f64_vec();
    let (alpha, beta) = (1.5, 1.2);
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..m {
                acc += a[i * m + k] * a[j * m + k];
            }
            c[i * n + j] = beta * c0[i * n + j] + alpha * acc;
        }
    }
    assert_eq!(outs[0].1, c, "SYRK");
}

#[test]
fn twodconv_matches_reference() {
    let (d, outs) = run_tiny(BenchKind::TwoDConv);
    let gen = inputs_for(BenchKind::TwoDConv);
    let (ni, nj) = (d.ni, d.nj);
    let a = gen.array("A", ni * nj).to_f64_vec();
    let mut b = vec![0.0; ni * nj];
    let at = |i: usize, j: usize| a[i * nj + j];
    for i in 1..ni - 1 {
        for j in 1..nj - 1 {
            // Mirror the kernel's exact operand and accumulation order.
            b[i * nj + j] = 0.2 * at(i - 1, j - 1)
                + 0.5 * at(i - 1, j)
                + -0.8 * at(i - 1, j + 1)
                + -0.3 * at(i, j - 1)
                + 0.6 * at(i, j)
                + -0.9 * at(i, j + 1)
                + 0.4 * at(i + 1, j - 1)
                + 0.7 * at(i + 1, j)
                + 0.1 * at(i + 1, j + 1);
        }
    }
    assert_eq!(outs[0].1, b, "2DCONV");
}

#[test]
fn covar_matches_reference() {
    let (d, outs) = run_tiny(BenchKind::Covar);
    let gen = inputs_for(BenchKind::Covar);
    let (m, n) = (d.ni, d.nj);
    let mut data = gen.array("DATA", n * m).to_f64_vec();
    // mean
    let mut mean = vec![0.0; m];
    for (j, slot) in mean.iter_mut().enumerate() {
        let mut acc = 0.0;
        for i in 0..n {
            acc += data[i * m + j];
        }
        *slot = acc / n as f64;
    }
    // center
    for i in 0..n {
        for j in 0..m {
            data[i * m + j] -= mean[j];
        }
    }
    // covariance
    let mut symmat = vec![0.0; m * m];
    for j1 in 0..m {
        for j2 in j1..m {
            let mut acc = 0.0;
            for i in 0..n {
                acc += data[i * m + j1] * data[i * m + j2];
            }
            symmat[j1 * m + j2] = acc;
            symmat[j2 * m + j1] = acc;
        }
    }
    assert_eq!(outs[0].1, symmat, "COVAR");
}

#[test]
fn bicg_matches_reference() {
    let (d, outs) = run_tiny(BenchKind::Bicg);
    let gen = inputs_for(BenchKind::Bicg);
    let n = d.ni;
    let a = gen.array("A", n * n).to_f64_vec();
    let p = gen.array("P", n).to_f64_vec();
    let r = gen.array("R", n).to_f64_vec();
    let mut q = vec![0.0; n];
    for (i, slot) in q.iter_mut().enumerate() {
        let mut acc = 0.0;
        for j in 0..n {
            acc += a[i * n + j] * p[j];
        }
        *slot = acc;
    }
    let mut s = vec![0.0; n];
    for (j, slot) in s.iter_mut().enumerate() {
        let mut acc = 0.0;
        for i in 0..n {
            acc += r[i] * a[i * n + j];
        }
        *slot = acc;
    }
    assert_eq!(outs[0].1, q, "BICG q");
    assert_eq!(outs[1].1, s, "BICG s");
}

#[test]
fn corr_matches_reference() {
    let (d, outs) = run_tiny(BenchKind::Corr);
    let gen = inputs_for(BenchKind::Corr);
    let (m, n) = (d.ni, d.nj);
    let float_n = n as f64;
    let eps = 0.1;
    let mut data = gen.array("DATA", n * m).to_f64_vec();
    // mean
    let mut mean = vec![0.0; m];
    for (j, slot) in mean.iter_mut().enumerate() {
        let mut acc = 0.0;
        for i in 0..n {
            acc += data[i * m + j];
        }
        *slot = acc / float_n;
    }
    // stddev (kernel order: dv = x - mean; acc += dv*dv; sqrt(acc/n))
    let mut std = vec![0.0; m];
    for (j, slot) in std.iter_mut().enumerate() {
        let mut acc = 0.0;
        for i in 0..n {
            let dv = data[i * m + j] - mean[j];
            acc += dv * dv;
        }
        let sd = (acc / float_n).sqrt();
        *slot = if sd <= eps { 1.0 } else { sd };
    }
    // reduce
    for i in 0..n {
        for j in 0..m {
            data[i * m + j] = (data[i * m + j] - mean[j]) / (float_n.sqrt() * std[j]);
        }
    }
    // correlation
    let mut symmat = vec![0.0; m * m];
    for j1 in 0..m - 1 {
        symmat[j1 * m + j1] = 1.0;
        for j2 in j1 + 1..m {
            let mut acc = 0.0;
            for i in 0..n {
                acc += data[i * m + j1] * data[i * m + j2];
            }
            symmat[j1 * m + j2] = acc;
            symmat[j2 * m + j1] = acc;
        }
    }
    symmat[(m - 1) * m + (m - 1)] = 1.0;
    assert_eq!(outs[0].1, symmat, "CORR");
}
