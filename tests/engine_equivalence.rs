//! Differential test: the bytecode VM and the reference tree-walking
//! interpreter must produce bit-identical results across the entire
//! benchmark suite, at every storage precision and with in-kernel casts.

use prescaler_ir::Precision;
use prescaler_ocl::{HostApp, ScalingSpec, Session};
use prescaler_polybench::{BenchKind, PolyApp};
use prescaler_sim::SystemModel;
use std::collections::HashMap;

fn run_with(app: &PolyApp, spec: &ScalingSpec, use_interp: bool) -> prescaler_ocl::Outputs {
    let mut session = Session::new(SystemModel::system1(), app.program(), spec.clone());
    session.set_use_interpreter(use_interp);
    app.run(&mut session).expect("benchmark runs")
}

fn assert_engines_agree(app: &PolyApp, spec: &ScalingSpec) {
    let vm = run_with(app, spec, false);
    let interp = run_with(app, spec, true);
    assert_eq!(vm.len(), interp.len());
    for ((n1, d1), (n2, d2)) in vm.iter().zip(&interp) {
        assert_eq!(n1, n2);
        assert_eq!(d1.len(), d2.len());
        assert_eq!(d1.precision(), d2.precision());
        for i in 0..d1.len() {
            let (a, b) = (d1.get(i), d2.get(i));
            // Half-precision overflow legitimately produces NaN (inf−inf);
            // both engines must produce it at the same elements.
            let equal = a == b || (a.is_nan() && b.is_nan());
            assert!(
                equal,
                "{}: output `{n1}`[{i}] diverged: VM {a} vs interpreter {b}",
                app.name()
            );
        }
    }
}

#[test]
fn all_benchmarks_agree_at_baseline() {
    for kind in BenchKind::ALL {
        let app = PolyApp::tiny(kind);
        assert_engines_agree(&app, &ScalingSpec::baseline());
    }
}

#[test]
fn all_benchmarks_agree_fully_scaled_to_single() {
    for kind in BenchKind::ALL {
        let app = PolyApp::tiny(kind);
        let mut spec = ScalingSpec::baseline();
        // Scale every object the profiler would see. Labels are stable,
        // so collect them from a quick baseline run.
        let mut s = Session::new(SystemModel::system1(), app.program(), spec.clone());
        app.run(&mut s).expect("baseline");
        for obj in &s.log().objects {
            spec = spec.with_target(&obj.label, Precision::Single);
        }
        assert_engines_agree(&app, &spec);
    }
}

#[test]
fn all_benchmarks_agree_fully_scaled_to_half() {
    for kind in BenchKind::ALL {
        let app = PolyApp::tiny(kind);
        let mut spec = ScalingSpec::baseline();
        let mut s = Session::new(SystemModel::system1(), app.program(), spec.clone());
        app.run(&mut s).expect("baseline");
        for obj in &s.log().objects {
            spec = spec.with_target(&obj.label, Precision::Half);
        }
        assert_engines_agree(&app, &spec);
    }
}

#[test]
fn in_kernel_casts_agree() {
    for kind in [
        BenchKind::Gemm,
        BenchKind::Atax,
        BenchKind::Corr,
        BenchKind::Fdtd2d,
    ] {
        let app = PolyApp::tiny(kind);
        let mut spec = ScalingSpec::baseline();
        // Lower every kernel's every buffer param to single, in-kernel.
        for kernel in &app.program().kernels {
            let mut map = HashMap::new();
            for b in kernel.buffer_names() {
                map.insert(b.to_owned(), Precision::Single);
            }
            spec.in_kernel.insert(kernel.name.clone(), map);
        }
        assert_engines_agree(&app, &spec);
    }
}

#[test]
fn mixed_precision_objects_agree() {
    // Alternate precisions across objects to exercise promotion paths.
    for kind in BenchKind::ALL {
        let app = PolyApp::tiny(kind);
        let mut s = Session::new(
            SystemModel::system1(),
            app.program(),
            ScalingSpec::baseline(),
        );
        app.run(&mut s).expect("baseline");
        let mut spec = ScalingSpec::baseline();
        for (i, obj) in s.log().objects.iter().enumerate() {
            let p = match i % 3 {
                0 => Precision::Double,
                1 => Precision::Single,
                _ => Precision::Half,
            };
            spec = spec.with_target(&obj.label, p);
        }
        assert_engines_agree(&app, &spec);
    }
}
