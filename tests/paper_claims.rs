//! Integration tests for the paper's headline claims, at a reduced but
//! meaningful scale (the `figures` binary runs the full-scale versions).

use prescaler_core::baselines::{in_kernel, pfp};
use prescaler_core::{profile_app, PreScaler, SystemInspector, TrialEngine};
use prescaler_polybench::{BenchKind, InputSet, PolyApp};
use prescaler_sim::SystemModel;

const SCALE: f64 = 0.3;

/// A small representative mix: one data-intensive, one compute-intensive,
/// one stencil.
const MIX: [BenchKind; 3] = [BenchKind::Atax, BenchKind::Gemm, BenchKind::TwoDConv];

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[test]
fn prescaler_beats_both_baseline_techniques_on_the_mix() {
    let system = SystemModel::system1();
    let db = SystemInspector::inspect(&system);
    let tuner = PreScaler::new(&system, &db, 0.9);

    let mut ik_speedups = Vec::new();
    let mut pfp_speedups = Vec::new();
    let mut ps_speedups = Vec::new();
    for kind in MIX {
        let app = PolyApp::scaled(kind, InputSet::Default, SCALE);
        let profile = profile_app(&app, &system).unwrap();
        let base = profile.baseline_time;

        let engine = TrialEngine::new(&app, &system, &profile);
        let ik = in_kernel(&engine, 0.9, 40);
        let p = pfp(&engine, 0.9);
        let tuned = tuner.tune(&app).unwrap();

        assert!(ik.eval.quality >= 0.9, "{kind} in-kernel TOQ");
        assert!(p.eval.quality >= 0.9, "{kind} pfp TOQ");
        assert!(tuned.eval.quality >= 0.9, "{kind} prescaler TOQ");

        ik_speedups.push(base / ik.eval.time);
        pfp_speedups.push(base / p.eval.time);
        ps_speedups.push(tuned.speedup());

        // PreScaler must never lose to PFP: its search starts from the
        // PFP winner.
        assert!(
            tuned.speedup() >= base / p.eval.time - 1e-9,
            "{kind}: PreScaler {} below PFP {}",
            tuned.speedup(),
            base / p.eval.time
        );
    }
    let (g_ik, g_pfp, g_ps) = (
        geomean(&ik_speedups),
        geomean(&pfp_speedups),
        geomean(&ps_speedups),
    );
    assert!(
        g_ps > g_pfp && g_ps > g_ik,
        "geomeans: prescaler {g_ps}, pfp {g_pfp}, in-kernel {g_ik}"
    );
    assert!(g_ps > 1.1, "PreScaler should give a real gain, got {g_ps}");
}

#[test]
fn narrower_pcie_increases_prescaler_gain_on_data_bound_apps() {
    // Paper §5.4: with x8 the transfer fraction grows, so the scaling
    // opportunity grows.
    let kind = BenchKind::Mvt;
    let mut speedups = Vec::new();
    for lanes in [16u8, 8] {
        let system = SystemModel::system1().with_pcie_lanes(lanes);
        let db = SystemInspector::inspect(&system);
        let tuned = PreScaler::new(&system, &db, 0.9)
            .tune(&PolyApp::scaled(kind, InputSet::Default, SCALE))
            .unwrap();
        assert!(tuned.eval.quality >= 0.9);
        speedups.push(tuned.speedup());
    }
    assert!(
        speedups[1] > speedups[0],
        "x8 speedup {} must exceed x16 speedup {}",
        speedups[1],
        speedups[0]
    );
}

#[test]
fn random_inputs_enable_at_least_default_gains() {
    // Paper Fig. 12: the 0..1 input range avoids half-precision overflow,
    // so the tuner can scale more aggressively.
    let system = SystemModel::system1();
    let db = SystemInspector::inspect(&system);
    let tuner = PreScaler::new(&system, &db, 0.9);
    let mut by_input = Vec::new();
    for input in [InputSet::Default, InputSet::Random] {
        let mut speedups = Vec::new();
        for kind in [BenchKind::Atax, BenchKind::Gesummv] {
            let tuned = tuner.tune(&PolyApp::scaled(kind, input, SCALE)).unwrap();
            assert!(tuned.eval.quality >= 0.9);
            speedups.push(tuned.speedup());
        }
        by_input.push(geomean(&speedups));
    }
    assert!(
        by_input[1] >= by_input[0] - 1e-9,
        "random {} should not trail default {}",
        by_input[1],
        by_input[0]
    );
}

#[test]
fn fast_fp16_systems_use_more_half_objects() {
    // System 1 (cc 6.1) has pathological FP16 compute; system 2 (V100)
    // does not. On a benchmark whose values fit half precision, the V100
    // configuration should use at least as many half-typed objects.
    let app = PolyApp::scaled(BenchKind::Mvt, InputSet::Default, SCALE);
    let mut halves = Vec::new();
    for system in [SystemModel::system1(), SystemModel::system2()] {
        let db = SystemInspector::inspect(&system);
        let tuned = PreScaler::new(&system, &db, 0.9).tune(&app).unwrap();
        let h = tuned
            .config
            .object_targets
            .values()
            .filter(|p| **p == prescaler_ir::Precision::Half)
            .count();
        halves.push(h);
    }
    assert!(
        halves[1] >= halves[0],
        "V100 half objects {} < Titan Xp half objects {}",
        halves[1],
        halves[0]
    );
}

#[test]
fn tuning_is_deterministic() {
    let system = SystemModel::system1();
    let db = SystemInspector::inspect(&system);
    let tuner = PreScaler::new(&system, &db, 0.9);
    let app = PolyApp::scaled(BenchKind::Bicg, InputSet::Default, 0.15);
    let a = tuner.tune(&app).unwrap();
    let b = tuner.tune(&app).unwrap();
    assert_eq!(a.config, b.config);
    assert_eq!(a.trials, b.trials);
    assert_eq!(a.eval.time, b.eval.time);
}

#[test]
fn stricter_toq_costs_speedup_but_holds_quality() {
    let system = SystemModel::system1();
    let db = SystemInspector::inspect(&system);
    let app = PolyApp::scaled(BenchKind::Gesummv, InputSet::Random, SCALE);
    let mut last = f64::INFINITY;
    for toq in [0.90, 0.99] {
        let tuned = PreScaler::new(&system, &db, toq).tune(&app).unwrap();
        assert!(
            tuned.eval.quality >= toq,
            "TOQ {toq} violated: {}",
            tuned.eval.quality
        );
        assert!(
            tuned.speedup() <= last + 1e-9,
            "TOQ {toq} speedup {} above looser setting {last}",
            tuned.speedup()
        );
        last = tuned.speedup();
    }
}
