//! Differential suite for the trial engine's execution modes.
//!
//! The tuner must be *mode-blind*: a [`TrialEngine`] with speculative
//! parallel fan-out enabled returns a [`Tuned`] bit-identical — chosen
//! config, evaluation times, quality, charged trials and cache hits — to
//! the sequential engine. Speculation may only change *when* candidate
//! evaluations happen, never *what* the search observes, because every
//! trial's fault stream is forked from the spec fingerprint rather than
//! drawn from a shared cursor.
//!
//! The CI fault matrix re-runs this suite under several values of
//! `PRESCALER_FAULT_SEED` so the equivalence is pinned down per fault
//! universe, not just on the clean path.

use prescaler_core::{profile_app, PreScaler, SystemInspector, TrialEngine, Tuned};
use prescaler_ocl::HostApp;
use prescaler_polybench::{BenchKind, PolyApp};
use prescaler_sim::{FaultPlan, SystemModel};

/// Matrix seed from the environment, mixed into every plan seed so the
/// CI fault matrix explores distinct universes per row.
fn matrix_seed() -> u64 {
    std::env::var("PRESCALER_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn mixed(seed: u64) -> u64 {
    seed ^ matrix_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Tunes `app` on `system` twice — sequential engine, then speculative
/// engine — sharing one inspection and one profiling run so both modes
/// see the exact same starting state.
fn tune_both(app: &PolyApp, system: &SystemModel, toq: f64) -> (Tuned, Tuned) {
    let db = SystemInspector::inspect(system);
    let tuner = PreScaler::new(system, &db, toq);
    let profile = profile_app(app, system).expect("baseline profiling");

    let seq = TrialEngine::with_speculation(app, system, &profile, false);
    let seq_tuned = tuner.tune_with_engine(&seq);

    let par = TrialEngine::with_speculation(app, system, &profile, true);
    let par_tuned = tuner.tune_with_engine(&par);

    (seq_tuned, par_tuned)
}

/// Every observable field of [`Tuned`] must match to the bit.
fn assert_bit_identical(app: &PolyApp, seq: &Tuned, par: &Tuned) {
    let name = app.name();
    assert_eq!(seq.config, par.config, "{name}: chosen config diverged");
    assert_eq!(
        seq.eval.time.as_secs().to_bits(),
        par.eval.time.as_secs().to_bits(),
        "{name}: eval time diverged"
    );
    assert_eq!(
        seq.eval.kernel_time.as_secs().to_bits(),
        par.eval.kernel_time.as_secs().to_bits(),
        "{name}: kernel time diverged"
    );
    assert_eq!(
        seq.eval.quality.to_bits(),
        par.eval.quality.to_bits(),
        "{name}: quality diverged"
    );
    assert_eq!(
        seq.baseline_time.as_secs().to_bits(),
        par.baseline_time.as_secs().to_bits(),
        "{name}: baseline time diverged"
    );
    assert_eq!(seq.trials, par.trials, "{name}: charged trials diverged");
    assert_eq!(
        seq.cache_hits, par.cache_hits,
        "{name}: cache hits diverged"
    );
    assert_eq!(seq.toq.to_bits(), par.toq.to_bits(), "{name}: toq diverged");
}

#[test]
fn speculative_engine_is_bit_identical_across_the_polybench_matrix() {
    let system = SystemModel::system1();
    for kind in BenchKind::ALL {
        let app = PolyApp::tiny(kind);
        let (seq, par) = tune_both(&app, &system, 0.999);
        assert_bit_identical(&app, &seq, &par);
        assert!(seq.trials > 0, "{}: search must pay for trials", app.name());
    }
}

#[test]
fn speculative_engine_is_bit_identical_on_other_systems() {
    // Different throughput tables steer the decision tree down different
    // branches; the equivalence must hold on each.
    for system in [SystemModel::system2(), SystemModel::system3()] {
        for kind in [BenchKind::Gemm, BenchKind::Atax, BenchKind::TwoDConv] {
            let app = PolyApp::tiny(kind);
            let (seq, par) = tune_both(&app, &system, 0.999);
            assert_bit_identical(&app, &seq, &par);
        }
    }
}

#[test]
fn speculative_engine_is_bit_identical_under_faults() {
    // Trial fault streams are forked per spec fingerprint, so evaluation
    // order cannot leak into what any one trial observes — even when the
    // injected faults actually fire.
    for seed in [1, 2, 3] {
        let faults = FaultPlan::seeded(mixed(seed))
            .with_transfer_failures(0.10)
            .with_launch_failures(0.05)
            .with_buffer_corruption(0.05)
            .with_clock_noise(0.05);
        let system = SystemModel::system1().with_faults(faults);
        for kind in [BenchKind::Gemm, BenchKind::Atax, BenchKind::Syrk] {
            let app = PolyApp::tiny(kind);
            let (seq, par) = tune_both(&app, &system, 0.999);
            assert_bit_identical(&app, &seq, &par);
        }
    }
}

#[test]
fn memoization_reports_cache_hits_without_inflating_trials() {
    // Tuning the same app twice on one shared engine: the second pass must
    // answer (almost) everything from the cache — strictly more cache hits
    // and strictly fewer charged trials than the first.
    let system = SystemModel::system1();
    let db = SystemInspector::inspect(&system);
    let tuner = PreScaler::new(&system, &db, 0.999);
    let app = PolyApp::tiny(BenchKind::Gemm);
    let profile = profile_app(&app, &system).expect("baseline profiling");
    let engine = TrialEngine::new(&app, &system, &profile);

    let first = tuner.tune_with_engine(&engine);
    let second = tuner.tune_with_engine(&engine);

    assert_eq!(
        first.config, second.config,
        "memoized rerun changed the answer"
    );
    assert_eq!(
        first.eval.time.as_secs().to_bits(),
        second.eval.time.as_secs().to_bits()
    );
    assert!(
        second.trials < first.trials,
        "second pass re-paid for trials: {} vs {}",
        second.trials,
        first.trials
    );
    assert!(
        second.cache_hits > first.cache_hits,
        "second pass found no cache hits"
    );
}
