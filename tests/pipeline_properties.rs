//! Property-based integration tests over the whole pipeline.

use prescaler_ir::{FloatVec, Precision};
use prescaler_ocl::{HostApp, PlanChoice, ScalingSpec, Session};
use prescaler_polybench::{array_quality, BenchKind, PolyApp};
use prescaler_sim::convert::convert_parallel;
use prescaler_sim::{Direction, HostMethod, SystemModel, TransferPlan};
use proptest::prelude::*;

fn arb_precision() -> impl Strategy<Value = Precision> {
    prop_oneof![
        Just(Precision::Half),
        Just(Precision::Single),
        Just(Precision::Double),
    ]
}

fn arb_method() -> impl Strategy<Value = HostMethod> {
    prop_oneof![
        Just(HostMethod::Loop),
        (2usize..32).prop_map(|threads| HostMethod::Multithread { threads }),
        ((2usize..32), (2usize..16))
            .prop_map(|(threads, chunks)| HostMethod::Pipelined { threads, chunks }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A transfer plan's functional result never depends on the host
    /// method (threads/pipelining are performance-only), and equals the
    /// sequential two-step conversion through the wire type.
    #[test]
    fn transfer_plans_are_method_independent(
        src in arb_precision(),
        mid in arb_precision(),
        dst in arb_precision(),
        method in arb_method(),
        values in proptest::collection::vec(-1.0e4f64..1.0e4, 1..200),
    ) {
        let plan = TransferPlan { direction: Direction::HtoD, src, intermediate: mid, dst, host_method: method };
        let data = FloatVec::from_f64_slice(&values, src);
        let got = plan.apply(&data);
        let expected = data.converted(mid).converted(dst);
        prop_assert_eq!(got, expected);
    }

    /// Plan cost is monotone in element count for every method.
    #[test]
    fn plan_cost_is_monotone_in_size(
        method in arb_method(),
        base in 1usize..100_000,
    ) {
        let system = SystemModel::system1();
        let plan = TransferPlan::host_scaled(
            Direction::HtoD, Precision::Double, Precision::Single, method);
        let small = plan.time(&system, base).total();
        let large = plan.time(&system, base * 4).total();
        prop_assert!(large >= small, "{} < {}", large, small);
    }

    /// Threaded conversion is bit-identical to sequential conversion.
    #[test]
    fn parallel_conversion_matches_sequential(
        p in arb_precision(),
        q in arb_precision(),
        threads in 1usize..16,
        values in proptest::collection::vec(-1.0e6f64..1.0e6, 1..5000),
    ) {
        let data = FloatVec::from_f64_slice(&values, p);
        prop_assert_eq!(convert_parallel(&data, q, threads), data.converted(q));
    }

    /// Quality is 1 against self, symmetric in "perfect" direction, and
    /// within [0, 1] always.
    #[test]
    fn quality_metric_is_bounded(
        a in proptest::collection::vec(-1.0e9f64..1.0e9, 1..100),
        b in proptest::collection::vec(-1.0e9f64..1.0e9, 1..100),
    ) {
        let n = a.len().min(b.len());
        let va = FloatVec::from_f64_slice(&a[..n], Precision::Double);
        let vb = FloatVec::from_f64_slice(&b[..n], Precision::Double);
        let q = array_quality(&va, &vb);
        prop_assert!((0.0..=1.0).contains(&q));
        prop_assert_eq!(array_quality(&va, &va), 1.0);
    }
}

/// Scaling a benchmark's objects can only lower quality relative to the
/// baseline, never raise it above 1 — and quality degrades monotonically
/// with precision for uniform configurations.
#[test]
fn uniform_precision_quality_is_monotone() {
    let system = SystemModel::system1();
    for kind in [BenchKind::Gemm, BenchKind::Atax, BenchKind::Corr] {
        let app = PolyApp::tiny(kind);
        let spec_for = |p: Option<Precision>| {
            let mut spec = ScalingSpec::baseline();
            if let Some(p) = p {
                let mut s = Session::new(system.clone(), app.program(), spec.clone());
                app.run(&mut s).unwrap();
                for obj in &s.log().objects {
                    spec = spec.with_target(&obj.label, p);
                }
            }
            spec
        };
        let run = |spec: &ScalingSpec| {
            let mut s = Session::new(system.clone(), app.program(), spec.clone());
            app.run(&mut s).unwrap()
        };
        let reference = run(&spec_for(None));
        let single = run(&spec_for(Some(Precision::Single)));
        let half = run(&spec_for(Some(Precision::Half)));
        let q_single = prescaler_polybench::output_quality(&reference, &single);
        let q_half = prescaler_polybench::output_quality(&reference, &half);
        assert!(
            q_half <= q_single + 1e-12,
            "{kind}: half quality {q_half} above single {q_single}"
        );
    }
}

/// A transient wire through half is never *more* accurate than the direct
/// path for double→single data.
#[test]
fn transient_conversion_is_lossier_than_direct() {
    let values: Vec<f64> = (0..512).map(|i| (i as f64 * 0.137).sin() * 50.0).collect();
    let data = FloatVec::from_f64_slice(&values, Precision::Double);
    let direct = TransferPlan::host_scaled(
        Direction::HtoD,
        Precision::Double,
        Precision::Single,
        HostMethod::Loop,
    )
    .apply(&data);
    let transient = TransferPlan::transient(
        Direction::HtoD,
        Precision::Double,
        Precision::Half,
        Precision::Single,
        HostMethod::Loop,
    )
    .apply(&data);
    let exact = FloatVec::from_f64_slice(&values, Precision::Double);
    let q_direct = array_quality(&exact, &direct.converted(Precision::Double));
    let q_transient = array_quality(&exact, &transient.converted(Precision::Double));
    assert!(q_transient < q_direct, "{q_transient} !< {q_direct}");
}

/// The runtime applies a read-side transient plan end-to-end: device data
/// in half, wire in half, host target double — no spurious conversions.
#[test]
fn read_plans_round_through_configured_wire() {
    let app = PolyApp::tiny(BenchKind::Atax);
    let spec = ScalingSpec::baseline()
        .with_target("Y", Precision::Single)
        .with_read_plan(
            "Y",
            PlanChoice {
                intermediate: Precision::Half,
                host_method: HostMethod::Loop,
            },
        );
    let mut s = Session::new(SystemModel::system1(), app.program(), spec);
    let outs = app.run(&mut s).unwrap();
    // Output arrives as double (app's declared type) but carries
    // binary16 granularity from the wire.
    assert_eq!(outs[0].1.precision(), Precision::Double);
    for v in outs[0].1.iter_f64() {
        let through_half = prescaler_fp16::F16::from_f64(v).to_f64();
        assert_eq!(v, through_half, "value {v} must sit on the f16 grid");
    }
}
