//! Differential suite for the data-parallel execution engine.
//!
//! Physical execution parallelism must be unobservable: running any
//! polybench application with the session's real worker-thread budget at
//! 1, 2, or 8 must produce bit-identical host outputs, identical
//! per-event profiles (which embed every launch's `OpCounts`), and an
//! identical `Timeline` — on the clean system and across the seeded
//! fault matrix (`PRESCALER_FAULT_SEED` mixes the universes in CI).
//! Kernels whose store patterns the disjoint-write analysis cannot prove
//! safe must fall back to sequential execution with the same guarantee.

use prescaler_ir::dsl::*;
use prescaler_ir::interp::{BufferMap, Launch};
use prescaler_ir::vm::{compile_kernel, VmScratch};
use prescaler_ir::{Access, FloatVec, ParallelSafety, Precision};
use prescaler_ocl::{HostApp, Outputs, ScalingSpec, Session, Timeline};
use prescaler_polybench::{BenchKind, PolyApp};
use prescaler_sim::{FaultPlan, SystemModel};

/// Matrix seed from the environment, mixed into every plan seed so the
/// CI fault matrix explores distinct universes per row.
fn matrix_seed() -> u64 {
    std::env::var("PRESCALER_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn mixed(seed: u64) -> u64 {
    seed ^ matrix_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `app` on `system` under `spec` with an explicit real
/// worker-thread budget, returning outputs, the full event stream, and
/// the timeline.
fn run_at(
    app: &PolyApp,
    system: &SystemModel,
    spec: &ScalingSpec,
    threads: usize,
) -> (Outputs, Vec<prescaler_ocl::Event>, Timeline) {
    let mut s =
        Session::new(system.clone(), app.program(), spec.clone()).with_exec_threads(threads);
    let outs = app.run(&mut s).expect("benchmark runs");
    let log = s.into_log();
    (outs, log.events, log.timeline)
}

/// Asserts two runs are observably identical to the bit.
fn assert_runs_identical(
    name: &str,
    threads: usize,
    a: &(Outputs, Vec<prescaler_ocl::Event>, Timeline),
    b: &(Outputs, Vec<prescaler_ocl::Event>, Timeline),
) {
    assert_eq!(
        a.0.len(),
        b.0.len(),
        "{name} @ {threads} threads: output arity diverged"
    );
    for ((la, va), (lb, vb)) in a.0.iter().zip(&b.0) {
        assert_eq!(la, lb, "{name} @ {threads} threads: output order diverged");
        assert_eq!(va.len(), vb.len());
        assert_eq!(va.precision(), vb.precision());
        for i in 0..va.len() {
            let (x, y) = (va.get(i), vb.get(i));
            assert!(
                x.to_bits() == y.to_bits(),
                "{name} @ {threads} threads: output `{la}`[{i}] diverged: {x} vs {y}"
            );
        }
    }
    assert_eq!(
        a.1, b.1,
        "{name} @ {threads} threads: profile events (incl. OpCounts) diverged"
    );
    assert_eq!(a.2, b.2, "{name} @ {threads} threads: timeline diverged");
}

/// The full polybench matrix, clean system: thread budget 1, 2 and 8
/// must be indistinguishable.
#[test]
fn polybench_is_thread_count_invariant_on_the_clean_system() {
    let system = SystemModel::system1();
    let spec = ScalingSpec::baseline();
    for kind in BenchKind::ALL {
        let app = PolyApp::tiny(kind);
        let seq = run_at(&app, &system, &spec, 1);
        for threads in [2usize, 8] {
            let par = run_at(&app, &system, &spec, threads);
            assert_runs_identical(&format!("{kind}"), threads, &seq, &par);
        }
    }
}

/// Scaled specs (half-precision targets, so real conversion work runs on
/// the parallel conversion paths) stay thread-count invariant too.
#[test]
fn scaled_specs_are_thread_count_invariant() {
    let system = SystemModel::system1();
    for kind in [BenchKind::Gemm, BenchKind::Atax, BenchKind::TwoDConv] {
        let app = PolyApp::tiny(kind);
        // Discover object labels from a baseline run, then scale them all.
        let mut probe = Session::new(system.clone(), app.program(), ScalingSpec::baseline());
        app.run(&mut probe).expect("probe run");
        let mut spec = ScalingSpec::baseline();
        for obj in &probe.log().objects {
            spec = spec.with_target(&obj.label, Precision::Half);
        }
        let seq = run_at(&app, &system, &spec, 1);
        for threads in [2usize, 8] {
            let par = run_at(&app, &system, &spec, threads);
            assert_runs_identical(&format!("{kind}/half"), threads, &seq, &par);
        }
    }
}

/// Under seeded fault universes (noise, corruption, transient failures,
/// throttle) the fault draws depend only on the operation sequence —
/// never on the thread budget — so runs stay bit-identical.
#[test]
fn faulty_systems_are_thread_count_invariant() {
    for seed in [5u64, 6, 7] {
        // A fresh plan per run: `FaultPlan` clones share their draw
        // counters, so reusing one system across runs would hand the
        // second run a different (continued) fault stream — the runs
        // must replay the *same* fault universe to be comparable.
        let mk_system = || {
            SystemModel::system1().with_faults(
                FaultPlan::seeded(mixed(seed))
                    .with_clock_noise(0.2)
                    .with_buffer_corruption(0.3)
                    .with_transfer_failures(0.2)
                    .with_throttle(0.3, 0.5),
            )
        };
        let spec = ScalingSpec::baseline();
        for kind in [BenchKind::Gemm, BenchKind::Mvt] {
            let app = PolyApp::tiny(kind);
            let seq = run_at(&app, &mk_system(), &spec, 1);
            for threads in [2usize, 8] {
                let par = run_at(&app, &mk_system(), &spec, threads);
                assert_runs_identical(&format!("{kind}/seed{seed}"), threads, &seq, &par);
            }
        }
    }
}

/// A kernel with overlapping writes (every work-item stores to the same
/// accumulator cell) must be rejected by the disjoint-write analysis or
/// its per-launch resolution, and `run_parallel` must fall back to
/// sequential execution — bit-identically, since sequential *is* the
/// fallback.
#[test]
fn overlapping_writes_fall_back_to_sequential() {
    let k = kernel("overlap")
        .buffer("x", Precision::Double, Access::Read)
        .buffer("acc", Precision::Double, Access::ReadWrite)
        .body(vec![
            let_("i", global_id(0)),
            store("acc", int(0), load("acc", int(0)) + load("x", var("i"))),
        ]);
    let compiled = compile_kernel(&k).expect("compiles");
    // The analysis proves all stores affine (constant), but the resolved
    // axis stride is zero, so chunked execution must refuse.
    let n = 256usize;
    let mk = || {
        let mut m = BufferMap::new();
        m.insert(
            "x".into(),
            FloatVec::from_f64_slice(
                &(0..n).map(|i| (i as f64).cos()).collect::<Vec<_>>(),
                Precision::Double,
            ),
        );
        m.insert("acc".into(), FloatVec::zeros(1, Precision::Double));
        m
    };
    let launch = Launch::one_d(n);
    let mut seq = mk();
    let counts_seq = compiled.run(&mut seq, &launch).unwrap();
    for threads in [2usize, 8] {
        let mut par = mk();
        let mut scratch = VmScratch::default();
        let counts_par = compiled
            .run_parallel(&mut par, &launch, &mut scratch, threads)
            .unwrap();
        assert_eq!(counts_seq, counts_par);
        assert_eq!(seq["acc"], par["acc"]);
    }

    // A store at a loop-carried index is rejected at analysis time.
    let rejected = kernel("scatter")
        .buffer("y", Precision::Double, Access::ReadWrite)
        .int_param("n")
        .body(vec![for_(
            "j",
            int(0),
            var("n"),
            vec![store("y", var("j"), flit(1.0))],
        )]);
    let compiled = compile_kernel(&rejected).expect("compiles");
    assert!(
        matches!(compiled.parallel_safety(), ParallelSafety::Unproven(_)),
        "loop-indexed stores must be unprovable"
    );
}

/// Non-finite (fault-poisoned) inputs exercise NaN/Inf propagation
/// through the carved-chunk store path; the parallel VM must still
/// match sequential execution bit for bit.
#[test]
fn poisoned_inputs_are_thread_count_invariant_at_the_vm_level() {
    use prescaler_ir::dsl::*;
    use prescaler_ir::interp::{BufferMap, Launch};
    use prescaler_ir::vm::{compile_kernel, VmScratch};
    use prescaler_ir::{Access, FloatVec, Precision};
    let k = kernel("gemm")
        .buffer("a", Precision::Double, Access::Read)
        .buffer("b", Precision::Double, Access::Read)
        .buffer("c", Precision::Double, Access::ReadWrite)
        .float_param_like("alpha", "c")
        .float_param_like("beta", "c")
        .int_param("ni")
        .int_param("nj")
        .int_param("nk")
        .body(vec![
            let_("j", global_id(0)),
            let_("i", global_id(1)),
            if_(
                lt(var("i"), var("ni")),
                vec![if_(
                    lt(var("j"), var("nj")),
                    vec![
                        let_acc("acc", "c", flit(0.0)),
                        for_(
                            "k",
                            int(0),
                            var("nk"),
                            vec![add_assign(
                                "acc",
                                load("a", var("i") * var("nk") + var("k"))
                                    * load("b", var("k") * var("nj") + var("j")),
                            )],
                        ),
                        store(
                            "c",
                            var("i") * var("nj") + var("j"),
                            var("alpha") * var("acc")
                                + var("beta") * load("c", var("i") * var("nj") + var("j")),
                        ),
                    ],
                )],
            ),
        ]);
    let compiled = compile_kernel(&k).expect("compiles");
    let n = 8usize;
    // Try each poison in each buffer position.
    for (pbuf, pidx, pval) in [
        ("a", 3usize, f64::INFINITY),
        ("a", 3, f64::NEG_INFINITY),
        ("a", 3, f64::NAN),
        ("b", 27, f64::INFINITY),
        ("b", 27, f64::NAN),
        ("c", 3, f64::NEG_INFINITY),
        ("c", 3, f64::INFINITY),
        ("c", 3, f64::NAN),
    ] {
        let mk = || {
            let mut m = BufferMap::new();
            for name in ["a", "b", "c"] {
                let xs: Vec<f64> = (0..n * n).map(|i| ((i + 1) as f64 * 0.37).sin()).collect();
                let mut v = FloatVec::from_f64_slice(&xs, Precision::Double);
                if name == pbuf {
                    v.set(pidx, pval);
                }
                m.insert(name.to_string(), v);
            }
            m
        };
        let launch = Launch::two_d(n, n)
            .arg_float("alpha", 1.5)
            .arg_float("beta", 1.2)
            .arg_int("ni", n as i64)
            .arg_int("nj", n as i64)
            .arg_int("nk", n as i64);
        let mut seq = mk();
        let counts_seq = compiled.run(&mut seq, &launch).unwrap();
        for threads in [2usize, 8] {
            let mut par = mk();
            let mut scratch = VmScratch::default();
            let counts_par = compiled
                .run_parallel(&mut par, &launch, &mut scratch, threads)
                .unwrap();
            assert_eq!(
                counts_seq, counts_par,
                "{pbuf}[{pidx}]={pval} counts @ {threads}"
            );
            for i in 0..n * n {
                let (x, y) = (seq["c"].get(i), par["c"].get(i));
                assert!(
                    x.to_bits() == y.to_bits(),
                    "{pbuf}[{pidx}]={pval} @ {threads}t: c[{i}] {x} vs {y}"
                );
            }
        }
    }
}
