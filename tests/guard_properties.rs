//! Seeded property suite for guarded execution (`prescaler-guard`).
//!
//! Two guarantees, each checked over dozens of generated cases (120
//! total between the two blocks):
//!
//! * **(a) Zero-interference**: with an inert fault plan, guarded
//!   production runs are bit-identical — outputs and per-run timeline —
//!   to unguarded `run_app` calls, and the anomaly-driven policy adds
//!   exactly zero virtual overhead.
//! * **(b) Quality floor**: under *any* seeded input-drift plan,
//!   [`Guard::verify`] ends with quality at or above TOQ or with the
//!   full-precision baseline fallback active — and every demotion or
//!   recovery is visible in the run report.
//!
//! The CI fault matrix re-runs this suite under several values of
//! `PRESCALER_FAULT_SEED`; the seed is mixed into every generated fault
//! plan so each matrix row explores a distinct replayable fault universe.

use prescaler_guard::{Guard, GuardAction, GuardPolicy};
use prescaler_ir::Precision;
use prescaler_ocl::{run_app, ScalingSpec};
use prescaler_polybench::{BenchKind, Dims, InputSet, PolyApp};
use prescaler_sim::{FaultPlan, SimTime, SystemModel};
use proptest::prelude::*;

/// Matrix seed from the environment, mixed into every plan seed so the
/// CI fault matrix explores distinct universes per row.
fn matrix_seed() -> u64 {
    std::env::var("PRESCALER_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn mixed(seed: u64) -> u64 {
    seed ^ matrix_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn app_for(kind: BenchKind, n: usize, seed: u64) -> PolyApp {
    PolyApp::new(kind, Dims::square(n), InputSet::Random, seed)
}

/// A tuned-like spec: every memory object of the app scaled to `target`.
fn uniform_spec(app: &PolyApp, target: Precision) -> ScalingSpec {
    let clean = SystemModel::system1();
    let (_, log) = run_app(app, &clean, &ScalingSpec::baseline()).unwrap();
    let mut spec = ScalingSpec::baseline();
    for obj in &log.objects {
        spec = spec.with_target(&obj.label, target);
    }
    spec
}

fn arb_kind() -> impl Strategy<Value = BenchKind> {
    prop_oneof![Just(BenchKind::Gemm), Just(BenchKind::Atax)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Property (a): guard enabled + no faults → bit-identical results
    /// and virtual time, and zero idle overhead when anomaly-driven.
    #[test]
    fn clean_guarded_runs_are_bit_identical(
        kind in arb_kind(),
        n in 4usize..12,
        input_seed in 0u64..1000,
        plan_seed in 0u64..1000,
        canary_every in prop_oneof![Just(0u64), Just(3u64)],
        runs in 1usize..5,
    ) {
        let app = app_for(kind, n, input_seed);
        let tuned = uniform_spec(&app, Precision::Half);
        // Seeded but inert: no fault kind configured, so the drift gain
        // is exactly 1.0 and no fault counter ever advances.
        let system = SystemModel::system1()
            .with_faults(FaultPlan::seeded(mixed(plan_seed)));
        let policy = GuardPolicy { canary_every, ..GuardPolicy::default() };
        let mut guard = Guard::new(&app, &system, tuned.clone(), policy).unwrap();

        for _ in 0..runs {
            let v = guard
                .run_production(|gain| app.clone().with_input_gain(gain))
                .unwrap();
            prop_assert_eq!(v.gain, 1.0);
            let (reference, log) = run_app(&app, &system, &tuned).unwrap();
            prop_assert_eq!(&v.outputs, &reference, "outputs must be bit-identical");
            prop_assert_eq!(v.timeline, log.timeline, "virtual time must be bit-identical");
            prop_assert!(!v.degraded);
            prop_assert!(v.actions.is_empty());
        }
        let report = guard.report();
        prop_assert_eq!(report.demotions, 0);
        prop_assert!(!report.fallback);
        if canary_every == 0 {
            prop_assert_eq!(report.canary_runs, 0);
            prop_assert_eq!(report.timeline.guard_overhead, SimTime::ZERO,
                "anomaly-driven guard must add zero idle overhead");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Property (b): any injected drift plan ends with quality >= TOQ or
    /// the full-precision fallback active; breaker activity is reported.
    #[test]
    fn drifted_sessions_end_at_toq_or_fallback(
        kind in arb_kind(),
        n in 4usize..12,
        input_seed in 0u64..1000,
        plan_seed in 0u64..1000,
        rate in 0.1f64..=1.0,
        magnitude in 1.0f64..2000.0,
        warmup in 0usize..4,
    ) {
        let app = app_for(kind, n, input_seed);
        let tuned = uniform_spec(&app, Precision::Half);
        let drifting = FaultPlan::seeded(mixed(plan_seed))
            .with_input_drift(rate, magnitude);
        let system = SystemModel::system1().with_faults(drifting);
        let policy = GuardPolicy::default();
        let toq = policy.toq;
        let mut guard = Guard::new(&app, &system, tuned, policy).unwrap();

        for _ in 0..warmup {
            guard
                .run_production(|gain| app.clone().with_input_gain(gain))
                .unwrap();
        }
        let quality = guard
            .verify(|gain| app.clone().with_input_gain(gain))
            .unwrap();
        let report = guard.report();
        prop_assert!(
            quality >= toq || report.fallback,
            "final quality {} below TOQ without fallback", quality
        );

        // Every breaker action is visible in the report's history, and
        // the counters agree with it.
        let demoted = report.history.iter()
            .filter(|e| matches!(e.action, GuardAction::Demoted { .. }))
            .count() as u64;
        let promoted = report.history.iter()
            .filter(|e| matches!(e.action, GuardAction::Promoted { .. }))
            .count() as u64;
        let fellback = report.history.iter()
            .any(|e| e.action == GuardAction::FallbackEngaged);
        prop_assert_eq!(report.demotions, demoted);
        prop_assert_eq!(report.promotions, promoted);
        prop_assert_eq!(report.fallback, fellback);
        // Canary accounting: scored runs always charge overhead.
        if report.canary_runs > 0 {
            prop_assert!(report.timeline.guard_overhead > SimTime::ZERO);
        }
        // The serialized summary mirrors the live report.
        let summary = report.summary();
        prop_assert_eq!(summary.runs, report.runs);
        prop_assert_eq!(summary.fallback, report.fallback);
        prop_assert_eq!(summary.final_quality, Some(quality));
    }
}

/// The verify loop's certificate holds even when drift fires on every
/// single run at catastrophic magnitude (deterministic worst case).
#[test]
fn constant_catastrophic_drift_is_survived() {
    let app = app_for(BenchKind::Gemm, 16, 7);
    let tuned = uniform_spec(&app, Precision::Half);
    let plan = FaultPlan::seeded(mixed(99)).with_input_drift(1.0, 1.0e6);
    let system = SystemModel::system1().with_faults(plan);
    let mut guard = Guard::new(&app, &system, tuned, GuardPolicy::default()).unwrap();
    let quality = guard
        .verify(|gain| app.clone().with_input_gain(gain))
        .unwrap();
    assert!(
        quality >= 0.9 || guard.fallback_active(),
        "catastrophic drift must end at TOQ or fallback, got {quality}"
    );
    assert!(guard.report().demotions > 0 || guard.report().fallback);
}
