//! Properties of the static precision-safety analysis and the IR passes
//! it leans on.
//!
//! The load-bearing guarantee is **prune equivalence**: enabling
//! trial-free static pruning must never change *what* the tuner decides —
//! only how many trials it pays for. The suite pins the full
//! [`Tuned::decision_digest`] bit-identical with pruning on and off
//! across the whole polybench matrix, and the CI fault matrix re-runs it
//! under several values of `PRESCALER_FAULT_SEED` so the guarantee holds
//! per fault universe, not just on the clean path.
//!
//! Alongside ride the pass-preservation properties the analysis assumes:
//! `const_fold` and `insert_casts` (at the identity compute precision)
//! leave every benchmark's outputs bit-identical.

use prescaler_core::{profile_app, PreScaler, SystemInspector, TrialEngine, Tuned};
use prescaler_ir::passes::{const_fold, insert_casts};
use prescaler_ir::{Kernel, Program};
use prescaler_ocl::{HostApp, ScalingSpec, Session};
use prescaler_polybench::{BenchKind, InputSet, PolyApp};
use prescaler_sim::{FaultPlan, SystemModel};
use std::collections::HashMap;

/// Matrix seed from the environment, mixed into every plan seed so the
/// CI fault matrix explores distinct universes per row.
fn matrix_seed() -> u64 {
    std::env::var("PRESCALER_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn mixed(seed: u64) -> u64 {
    seed ^ matrix_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Tunes `app` twice — static pruning on (the default), then off — on
/// fresh engines sharing one inspection and one profiling run.
fn tune_on_off(app: &PolyApp, system: &SystemModel, toq: f64) -> (Tuned, Tuned) {
    let db = SystemInspector::inspect(system);
    let profile = profile_app(app, system).expect("baseline profiling");

    let tuner = PreScaler::new(system, &db, toq);
    let on = tuner.tune_with_engine(&TrialEngine::new(app, system, &profile));

    let tuner = PreScaler::new(system, &db, toq).without_static_prune();
    let off = tuner.tune_with_engine(&TrialEngine::new(app, system, &profile));

    (on, off)
}

fn assert_prune_equivalent(app: &PolyApp, on: &Tuned, off: &Tuned) {
    let name = app.name();
    assert_eq!(
        on.decision_digest(),
        off.decision_digest(),
        "{name}: pruning changed the tuner's decision"
    );
    assert_eq!(off.pruned_static, 0, "{name}: disabled pruning still fired");
    if on.pruned_static > 0 {
        assert!(
            on.trials < off.trials,
            "{name}: {} candidates pruned but trials did not drop ({} vs {})",
            on.pruned_static,
            on.trials,
            off.trials
        );
    } else {
        assert_eq!(
            on.trials, off.trials,
            "{name}: nothing pruned yet trial counts diverged"
        );
    }
}

#[test]
fn pruning_is_decision_invariant_across_the_polybench_matrix() {
    // Default inputs are uniform in (0, 513): inner products overflow
    // half on the accumulating benchmarks, which is exactly what the
    // analysis proves and prunes.
    let system = SystemModel::system1();
    let mut apps_pruned = 0;
    for kind in BenchKind::ALL {
        let app = PolyApp::scaled(kind, InputSet::Default, 0.05);
        let (on, off) = tune_on_off(&app, &system, 0.9);
        assert_prune_equivalent(&app, &on, &off);
        if on.pruned_static > 0 {
            apps_pruned += 1;
        }
    }
    assert!(
        apps_pruned >= 2,
        "static analysis pruned on only {apps_pruned} apps"
    );
}

#[test]
fn pruning_is_decision_invariant_under_faults() {
    // The prune skips a trial entirely; because per-trial fault streams
    // are forked from the spec fingerprint, skipping one trial must not
    // shift what any other trial observes — even when faults fire.
    let system_faults = |seed: u64| {
        SystemModel::system1().with_faults(
            FaultPlan::seeded(mixed(seed))
                .with_transfer_failures(0.10)
                .with_launch_failures(0.05)
                .with_clock_noise(0.05),
        )
    };
    for seed in [1, 2, 3] {
        let system = system_faults(seed);
        for kind in [BenchKind::Gemm, BenchKind::TwoMM, BenchKind::Bicg] {
            let app = PolyApp::scaled(kind, InputSet::Default, 0.05);
            let (on, off) = tune_on_off(&app, &system, 0.9);
            assert_prune_equivalent(&app, &on, &off);
        }
    }
}

#[test]
fn random_inputs_prune_nothing_and_stay_invariant() {
    // Uniform (0, 1) inputs keep every accumulation inside half's range:
    // no proof is possible, so the pruned count must be zero and the
    // searches must walk identical paths.
    let system = SystemModel::system1();
    for kind in [BenchKind::Gemm, BenchKind::Atax, BenchKind::Syrk] {
        let app = PolyApp::scaled(kind, InputSet::Random, 0.05);
        let (on, off) = tune_on_off(&app, &system, 0.9);
        assert_eq!(on.pruned_static, 0, "{}: spurious proof", app.name());
        assert_prune_equivalent(&app, &on, &off);
    }
}

// ---------------------------------------------------------------------
// Pass-preservation properties.
// ---------------------------------------------------------------------

fn transform_program(program: &Program, f: impl Fn(&Kernel) -> Kernel) -> Program {
    let mut out = program.clone();
    out.kernels = out.kernels.iter().map(f).collect();
    out
}

fn run_program(app: &PolyApp, program: Program) -> prescaler_ocl::Outputs {
    let mut session = Session::new(SystemModel::system1(), program, ScalingSpec::baseline());
    app.run(&mut session).expect("benchmark runs")
}

fn assert_outputs_identical(app: &PolyApp, what: &str) {
    let base = run_program(app, app.program());
    let transformed = match what {
        "const_fold" => transform_program(&app.program(), const_fold),
        "insert_casts" => transform_program(&app.program(), |k| {
            // The identity compute map: every buffer computes at its own
            // element precision. The pass still concretizes every
            // `ElemOf` type, so this exercises the whole rewrite.
            let compute: HashMap<_, _> = k
                .buffer_names()
                .iter()
                .map(|b| ((*b).to_owned(), k.buffer_elem(b).expect("buffer typed")))
                .collect();
            insert_casts(k, &compute)
        }),
        other => panic!("unknown pass {other}"),
    };
    let out = run_program(app, transformed);
    assert_eq!(base.len(), out.len());
    for ((n1, d1), (n2, d2)) in base.iter().zip(&out) {
        assert_eq!(n1, n2);
        assert_eq!(d1.len(), d2.len());
        for i in 0..d1.len() {
            let (a, b) = (d1.get(i), d2.get(i));
            assert!(
                a == b || (a.is_nan() && b.is_nan()),
                "{}: {what} changed output `{n1}`[{i}]: {a} vs {b}",
                app.name()
            );
        }
    }
}

#[test]
fn const_fold_preserves_every_benchmark_bit_identically() {
    for kind in BenchKind::ALL {
        let app = PolyApp::tiny(kind);
        assert_outputs_identical(&app, "const_fold");
        // Folding is idempotent: a second pass finds nothing left.
        for k in &app.program().kernels {
            let once = const_fold(k);
            assert_eq!(const_fold(&once), once, "{}: fold not a fixpoint", k.name);
        }
    }
}

#[test]
fn insert_casts_at_identity_precision_preserves_every_benchmark() {
    for kind in BenchKind::ALL {
        let app = PolyApp::tiny(kind);
        assert_outputs_identical(&app, "insert_casts");
    }
}
