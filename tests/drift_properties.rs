//! System-drift property suite: the system changes underneath a tuned
//! configuration — thermal throttling, PCIe bandwidth collapse, a lost
//! device — and the stack must (1) never lie about quality while serving,
//! (2) re-tune warm to the *same* answer a cold tune reaches while
//! charging strictly fewer executions, and (3) refuse to load a spec onto
//! foreign hardware with a typed error instead of silently mis-serving.
//!
//! The CI fault matrix re-runs this suite under several values of
//! `PRESCALER_FAULT_SEED`, so the guarantees are pinned per fault
//! universe, not just on one drift trajectory.

use prescaler_core::recovery::{tune_durable, TuneError};
use prescaler_core::{retune_warm, revalidate, DriftVerdict, PreScaler, SystemInspector, Tuned};
use prescaler_guard::{Guard, GuardPolicy};
use prescaler_ocl::OclError;
use prescaler_persist::PersistError;
use prescaler_polybench::{BenchKind, PolyApp};
use prescaler_sim::{FaultPlan, SystemModel};
use std::path::PathBuf;

/// Matrix seed from the environment, mixed into every plan seed so the
/// CI fault matrix explores distinct universes per row.
fn matrix_seed() -> u64 {
    std::env::var("PRESCALER_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn mixed(seed: u64) -> u64 {
    seed ^ matrix_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "prescaler_drift_props_{}_{}",
        std::process::id(),
        matrix_seed()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(tag)
}

/// The fast app matrix: small enough to tune in milliseconds, diverse
/// enough to exercise transfer-heavy (Atax), compute-heavy (Gemm) and
/// multi-kernel (Corr) shapes.
const APPS: [BenchKind; 3] = [BenchKind::Gemm, BenchKind::Atax, BenchKind::Corr];

/// One mid-life system drift, as a fault plan for the *same* hardware.
#[derive(Clone, Copy, Debug)]
enum Drift {
    Throttle,
    BandwidthDrop,
    DeviceLost,
}

const DRIFTS: [Drift; 3] = [Drift::Throttle, Drift::BandwidthDrop, Drift::DeviceLost];

impl Drift {
    /// A moderate instance of the drift: trials still (mostly) complete,
    /// so tuning on the drifted system is meaningful.
    fn plan(self, seed: u64) -> FaultPlan {
        match self {
            Drift::Throttle => FaultPlan::seeded(seed).with_throttle(0.7, 0.6),
            Drift::BandwidthDrop => FaultPlan::seeded(seed).with_bandwidth_drop(0.7, 0.6),
            Drift::DeviceLost => FaultPlan::seeded(seed).with_device_loss(0.25),
        }
    }
}

/// Serving under a drifting system never lies about quality: every
/// certified session ends at or above TOQ, or with the full-precision
/// fallback engaged — and never panics.
#[test]
fn serving_under_drift_certifies_toq_or_fallback() {
    for kind in APPS {
        for s in 0..3u64 {
            for drift in [Drift::Throttle, Drift::BandwidthDrop] {
                let clean = SystemModel::system1();
                let db = SystemInspector::inspect(&clean);
                let tuner = PreScaler::new(&clean, &db, 0.9);
                let app = PolyApp::tiny(kind);
                let tuned = tuner.tune(&app).expect("clean tune");

                let drifted = clean.clone().with_faults(drift.plan(mixed(100 + s)));
                let mut guard = Guard::new(
                    &app,
                    &drifted,
                    tuned.config.clone(),
                    GuardPolicy::for_tuned(&tuned),
                )
                .expect("guard setup");
                for _ in 0..6 {
                    let v = guard
                        .run_production(|gain| PolyApp::tiny(kind).with_input_gain(gain))
                        .unwrap_or_else(|e| {
                            panic!("{kind:?}/{drift:?}/seed{s}: serving died: {e}")
                        });
                    if let Some(q) = v.canary_quality {
                        assert!(
                            q >= 0.9 || v.degraded,
                            "{kind:?}/{drift:?}/seed{s}: scored {q} undegraded"
                        );
                    }
                }
                let q = guard
                    .verify(|gain| PolyApp::tiny(kind).with_input_gain(gain))
                    .expect("verify");
                assert!(
                    q >= 0.9 || guard.fallback_active(),
                    "{kind:?}/{drift:?}/seed{s}: certified {q} without fallback"
                );
            }
        }
    }
}

/// A hot device loss is a *typed, fatal* error — the guard fails over and
/// demands revalidation instead of panicking or retrying forever.
#[test]
fn lost_device_mid_serve_is_typed_and_flags_revalidation() {
    for kind in APPS {
        for s in 0..3u64 {
            let clean = SystemModel::system1();
            let db = SystemInspector::inspect(&clean);
            let tuner = PreScaler::new(&clean, &db, 0.9);
            let app = PolyApp::tiny(kind);
            let tuned = tuner.tune(&app).expect("clean tune");

            let gone = clean
                .clone()
                .with_faults(FaultPlan::seeded(mixed(200 + s)).with_device_loss(1.0));
            let mut guard = Guard::new(
                &app,
                &gone,
                tuned.config.clone(),
                GuardPolicy::for_tuned(&tuned),
            )
            .expect("guard setup runs on the clean twin");
            let err = guard
                .run_production(|gain| PolyApp::tiny(kind).with_input_gain(gain))
                .expect_err("a lost device cannot serve");
            assert!(
                matches!(err, OclError::DeviceLost { .. }),
                "{kind:?}/seed{s}: wrong error {err}"
            );
            assert!(guard.fallback_active(), "{kind:?}/seed{s}");
            assert!(guard.revalidation_due(), "{kind:?}/seed{s}");

            // …and revalidation agrees the spec is unrunnable there.
            let tuner_gone = PreScaler::new(&gone, &db, 0.9);
            let r = revalidate(&tuner_gone, &app, &tuned.config, tuned.system_fingerprint)
                .expect("oracle replays on the clean twin");
            assert_eq!(r.verdict, DriftVerdict::Unrunnable, "{kind:?}/seed{s}");
        }
    }
}

/// Warm re-tuning after drift reaches the accepted configuration a cold
/// tune on the same drifted system reaches — bit-identical, never slower
/// than the baseline — while charging strictly fewer executions.
#[test]
fn warm_retune_is_bit_identical_and_strictly_cheaper() {
    for kind in APPS {
        for s in 0..3u64 {
            for drift in DRIFTS {
                let clean = SystemModel::system1();
                let db = SystemInspector::inspect(&clean);
                let app = PolyApp::tiny(kind);
                let previous = PreScaler::new(&clean, &db, 0.9)
                    .tune(&app)
                    .expect("clean tune");

                let drifted = clean.clone().with_faults(drift.plan(mixed(300 + s)));
                let tuner = PreScaler::new(&drifted, &db, 0.9);
                let tag = format!("{kind:?}_{drift:?}_{s}");

                let path = temp_path(&format!("{tag}.wal"));
                std::fs::remove_file(&path).ok();
                let cold = tune_durable(&tuner, &app, &path).expect("cold tune");
                let warm =
                    retune_warm(&tuner, &app, &previous.config, &path).expect("warm re-tune");

                assert!(warm.replayed > 0, "{tag}: journal must replay");
                assert_eq!(warm.tuned.config, cold.tuned.config, "{tag}: spec diverged");
                assert_eq!(
                    warm.tuned.eval.time.as_secs().to_bits(),
                    cold.tuned.eval.time.as_secs().to_bits(),
                    "{tag}: eval time diverged"
                );
                assert_eq!(
                    warm.tuned.eval.quality.to_bits(),
                    cold.tuned.eval.quality.to_bits(),
                    "{tag}: quality diverged"
                );
                assert!(
                    warm.stats.executions < cold.stats.executions,
                    "{tag}: warm {} !< cold {}",
                    warm.stats.executions,
                    cold.stats.executions
                );
                assert!(
                    warm.tuned.speedup() >= 1.0,
                    "{tag}: accepted spec slower than baseline ({}x)",
                    warm.tuned.speedup()
                );
                std::fs::remove_file(&path).ok();
            }
        }
    }
}

/// A persisted spec is bound to the hardware it was decided on: loading
/// it against different metal is a typed `ContextMismatch`, while a
/// relabeled or merely *drifting* copy of the same metal loads fine.
#[test]
fn snapshots_refuse_foreign_hardware_but_tolerate_drift() {
    let system1 = SystemModel::system1();
    let db = SystemInspector::inspect(&system1);
    let tuner = PreScaler::new(&system1, &db, 0.9);
    let app = PolyApp::tiny(BenchKind::Gemm);
    let tuned = tuner.tune(&app).expect("tune");

    let path = temp_path("foreign.tuned.json");
    tuned.save(&path).expect("save");

    let system2 = SystemModel::system2();
    let err = Tuned::load(&path, &system2).expect_err("foreign metal must be refused");
    match err {
        PersistError::ContextMismatch { expected, got } => {
            assert_eq!(expected, system2.fingerprint());
            assert_eq!(got, system1.fingerprint());
        }
        other => panic!("wrong error: {other}"),
    }

    // Drift is a condition of the same hardware, not a hardware change:
    // the snapshot still loads, and revalidation (not a load error) is
    // the mechanism that decides whether it may keep serving.
    for drift in DRIFTS {
        let drifting = system1.clone().with_faults(drift.plan(mixed(400)));
        let snap = Tuned::load(&path, &drifting)
            .unwrap_or_else(|e| panic!("{drift:?}: same-metal load refused: {e}"));
        assert_eq!(snap.system_fingerprint, system1.fingerprint());
    }
    std::fs::remove_file(&path).ok();
}

/// A spec from foreign hardware short-circuits revalidation — nothing is
/// executed — and a foreign journal never warms a re-tune.
#[test]
fn foreign_fingerprints_short_circuit_revalidation_and_warm_start() {
    let system2 = SystemModel::system2();
    let db2 = SystemInspector::inspect(&system2);
    let tuner2 = PreScaler::new(&system2, &db2, 0.9);
    let app = PolyApp::tiny(BenchKind::Gemm);

    let r = revalidate(
        &tuner2,
        &app,
        &prescaler_ocl::ScalingSpec::baseline(),
        SystemModel::system1().fingerprint(),
    )
    .expect("short-circuit is not an error");
    assert_eq!(r.verdict, DriftVerdict::ForeignSystem);
    assert!(r.oracle.is_none() && r.observed.is_none());

    // A journal written under system1's context refuses to open for a
    // system2 tune: the mismatch is typed, not a silent cold start.
    let system1 = SystemModel::system1();
    let db1 = SystemInspector::inspect(&system1);
    let tuner1 = PreScaler::new(&system1, &db1, 0.9);
    let path = temp_path("foreign_journal.wal");
    std::fs::remove_file(&path).ok();
    tune_durable(&tuner1, &app, &path).expect("journal written on system1");
    let err = retune_warm(
        &tuner2,
        &app,
        &prescaler_ocl::ScalingSpec::baseline(),
        &path,
    )
    .expect_err("foreign journal must not warm a tune");
    assert!(
        matches!(
            err,
            TuneError::Persist(PersistError::ContextMismatch { .. })
        ),
        "wrong error: {err}"
    );
    std::fs::remove_file(&path).ok();
}
