//! Seeded property suite for overload-safe serving (`prescaler-serve`).
//!
//! Generated cases sweep apps × seeds × worker counts × overload plans
//! (arrival bursts, input drift, device loss, tight queues, tight
//! deadlines) and pin the serving front-end's four contracts:
//!
//! * **(a) Worker-count bit-identity**: the same `(seed, trace, policy)`
//!   yields bit-identical per-request outcomes — and outcome digests —
//!   at 1, 2, and 8 workers.
//! * **(b) TOQ-or-fallback for every admitted request**: a canary-scored
//!   run below TOQ is always answered by guard action (demotion en route
//!   to recovery, or the sticky baseline fallback); quality is never
//!   silently shed.
//! * **(c) Typed rejections**: every arrival is accounted for by exactly
//!   one outcome — served, or one of the four `ServeError`s — and a
//!   device loss drains the remainder of the session as `ShuttingDown`.
//! * **(d) Bounded queue memory**: the admission queue's high-water mark
//!   never exceeds its configured capacity.
//!
//! The CI fault matrix re-runs this suite under several values of
//! `PRESCALER_FAULT_SEED`; the seed is mixed into every generated fault
//! plan so each matrix row explores a distinct replayable fault universe.

use prescaler_guard::{speculate, Guard, GuardPolicy};
use prescaler_ir::Precision;
use prescaler_ocl::{run_app, ScalingSpec};
use prescaler_polybench::{BenchKind, Dims, InputSet, PolyApp};
use prescaler_serve::{ArrivalTrace, ServeConfig, ServeError, ServeRun, Server};
use prescaler_sim::{FaultPlan, SimTime, SystemModel};
use proptest::prelude::*;

const TOQ: f64 = 0.9;

fn matrix_seed() -> u64 {
    std::env::var("PRESCALER_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn mixed(seed: u64) -> u64 {
    seed ^ matrix_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn app_for(kind: BenchKind, n: usize, seed: u64) -> PolyApp {
    PolyApp::new(kind, Dims::square(n), InputSet::Random, seed)
}

/// A tuned-like spec: every memory object of the app scaled to half.
fn half_spec(app: &PolyApp) -> ScalingSpec {
    let clean = SystemModel::system1();
    let (_, log) = run_app(app, &clean, &ScalingSpec::baseline()).unwrap();
    let mut spec = ScalingSpec::baseline();
    for obj in &log.objects {
        spec = spec.with_target(&obj.label, Precision::Half);
    }
    spec
}

fn arb_kind() -> impl Strategy<Value = BenchKind> {
    prop_oneof![Just(BenchKind::Gemm), Just(BenchKind::Atax)]
}

/// Serve one generated scenario at the given worker count.
#[allow(clippy::too_many_arguments)]
fn serve_case(
    workers: usize,
    app_seed: u64,
    kind: BenchKind,
    n: usize,
    plan: &FaultPlan,
    trace: &ArrivalTrace,
    capacity: usize,
    deadline: SimTime,
) -> ServeRun {
    let app = app_for(kind, n, app_seed);
    let tuned = half_spec(&app);
    let system = SystemModel::system1().with_faults(plan.clone());
    let guard = Guard::new(&app, &system, tuned, GuardPolicy::with_toq(TOQ)).unwrap();
    let config = ServeConfig {
        queue_capacity: capacity,
        deadline,
        workers,
        overload_shed_tolerance: 5,
    };
    let server = Server::new(guard, config);
    let run = server.serve(trace, |gain| {
        app_for(kind, n, app_seed).with_input_gain(gain)
    });
    // Overload-to-revalidation is part of the shed-work-not-quality
    // contract; check it while the server is still in scope.
    if run.report.summary.overload_revalidation {
        assert!(server.guard().revalidation_due());
    }
    run
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    #[test]
    fn serving_contracts_hold_under_overload(
        kind in arb_kind(),
        n in 4usize..10,
        app_seed in 0u64..1000,
        plan_seed in 0u64..1000,
        burst in prop_oneof![Just((0.0, 0u64)), Just((0.4, 3u64)), Just((1.0, 5u64))],
        drift in prop_oneof![Just((0.0, 0.0)), Just((0.4, 3.0))],
        loss_rate in prop_oneof![Just(0.0), Just(0.0), Just(0.08)],
        capacity in 1usize..4,
        requests in 6usize..14,
        pressure in prop_oneof![Just(0.5), Just(1.5)],
        deadline_factor in prop_oneof![Just(2.5), Just(8.0)],
    ) {
        let (burst_rate, burst_size) = burst;
        let (drift_rate, drift_mag) = drift;
        let plan = FaultPlan::seeded(mixed(plan_seed))
            .with_overload_burst(burst_rate, burst_size)
            .with_input_drift(drift_rate, drift_mag)
            .with_device_loss(loss_rate);

        // Size arrivals and deadlines against the device's clean service
        // time so every generated scenario is meaningfully loaded.
        let app = app_for(kind, n, app_seed);
        let tuned = half_spec(&app);
        let clean = SystemModel::system1();
        let probe = speculate(&clean, &tuned, 0, |g| app_for(kind, n, app_seed).with_input_gain(g));
        let service = probe.result.unwrap().1.timeline.total();
        let trace = ArrivalTrace::generate(
            mixed(plan_seed ^ 0xA5A5),
            requests,
            service * pressure,
            &plan,
        );
        let deadline = service * deadline_factor;

        // (a) Bit-identical per-request outcomes at 1, 2, and 8 workers.
        let runs: Vec<ServeRun> = [1usize, 2, 8]
            .iter()
            .map(|&w| serve_case(w, app_seed, kind, n, &plan, &trace, capacity, deadline))
            .collect();
        prop_assert_eq!(&runs[0].outcomes, &runs[1].outcomes, "1 vs 2 workers");
        prop_assert_eq!(&runs[0].outcomes, &runs[2].outcomes, "1 vs 8 workers");
        prop_assert_eq!(runs[0].report.outcome_digest, runs[1].report.outcome_digest);
        prop_assert_eq!(runs[0].report.outcome_digest, runs[2].report.outcome_digest);
        prop_assert_eq!(&runs[0].report.summary, &runs[2].report.summary);
        prop_assert_eq!(&runs[0].report.guard, &runs[2].report.guard);

        let run = &runs[0];
        let sum = &run.report.summary;

        // (c) Every arrival has exactly one typed fate; totals reconcile.
        prop_assert_eq!(sum.arrivals, trace.len() as u64);
        prop_assert_eq!(sum.accounted(), sum.arrivals, "no silent drops");
        prop_assert_eq!(run.outcomes.len(), trace.len());
        let mut seen_loss = false;
        let mut served_count = 0u64;
        for outcome in &run.outcomes {
            match &outcome.result {
                Ok(served) => {
                    prop_assert!(!seen_loss, "nothing serves after a device loss");
                    prop_assert!(served.completed >= served.started);
                    prop_assert!(served.started >= served.arrival);
                    prop_assert!(
                        served.completed <= outcome.arrival + deadline + SimTime::from_secs(1e-12),
                        "an admitted request finishes inside its budget"
                    );
                    served_count += 1;
                }
                Err(ServeError::DeviceLost) => seen_loss = true,
                Err(ServeError::ShuttingDown) => {
                    prop_assert!(seen_loss, "only a loss drains this session");
                }
                Err(ServeError::QueueFull | ServeError::DeadlineExceeded) => {
                    prop_assert!(!seen_loss);
                }
            }
        }
        prop_assert_eq!(served_count, sum.served);

        // (d) Bounded queue memory.
        prop_assert!(
            sum.peak_queue_depth <= capacity as u64,
            "queue bound violated: {} > {}",
            sum.peak_queue_depth,
            capacity
        );

        // (b) TOQ-or-fallback for every admitted request: a canary score
        // below TOQ is always met with guard action, never ignored.
        for outcome in &run.outcomes {
            if let Ok(served) = &outcome.result {
                if let Some(q) = served.canary_quality {
                    prop_assert!(
                        q >= TOQ
                            || run.report.guard.demotions > 0
                            || run.report.guard.fallback,
                        "below-TOQ canary ({q}) with no guard response"
                    );
                }
            }
        }
        // Quality is never shed for throughput: overload alone (no drift,
        // no loss) demotes nothing and serves nothing degraded.
        if drift_rate == 0.0 && loss_rate == 0.0 {
            prop_assert_eq!(run.report.guard.demotions, 0);
            prop_assert_eq!(sum.degraded_served, 0);
        }
    }
}

/// The serving front-end is exactly as replayable as the rest of the
/// stack: the same (seed, trace, policy) twice is the same session,
/// outcome stream and digest included.
#[test]
fn repeat_sessions_are_bit_identical() {
    let plan = FaultPlan::seeded(mixed(77))
        .with_overload_burst(0.5, 4)
        .with_input_drift(0.3, 2.0);
    let app = app_for(BenchKind::Gemm, 8, 7);
    let tuned = half_spec(&app);
    let clean = SystemModel::system1();
    let probe = speculate(&clean, &tuned, 0, |g| {
        app_for(BenchKind::Gemm, 8, 7).with_input_gain(g)
    });
    let service = probe.result.unwrap().1.timeline.total();
    let trace = ArrivalTrace::generate(9, 20, service, &plan);
    let a = serve_case(2, 7, BenchKind::Gemm, 8, &plan, &trace, 2, service * 4.0);
    let b = serve_case(2, 7, BenchKind::Gemm, 8, &plan, &trace, 2, service * 4.0);
    assert_eq!(a, b);
}
