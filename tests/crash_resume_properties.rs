//! Crash-resume property suite: a durable tune killed at **every** trial
//! boundary — under every tear mode a dying `write(2)` can leave behind —
//! must resume from its journal to a `Tuned` bit-identical to the
//! uninterrupted run, re-charging zero completed trials.
//!
//! The CI fault matrix re-runs this suite under several values of
//! `PRESCALER_FAULT_SEED`, so the recovery guarantee is pinned per fault
//! universe, not just on the clean path.

use prescaler_core::recovery::{tune_durable, tune_durable_with_crash, DurableReport};
use prescaler_core::{PreScaler, SystemInspector, Tuned};
use prescaler_faults::{CrashPoint, TearMode};
use prescaler_ocl::HostApp;
use prescaler_polybench::{BenchKind, PolyApp};
use prescaler_sim::{FaultPlan, SystemModel};
use std::path::PathBuf;

/// Matrix seed from the environment, mixed into every plan seed so the
/// CI fault matrix explores distinct universes per row.
fn matrix_seed() -> u64 {
    std::env::var("PRESCALER_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn mixed(seed: u64) -> u64 {
    seed ^ matrix_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn temp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "prescaler_crash_resume_{}_{}",
        std::process::id(),
        matrix_seed()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.wal"))
}

/// Every observable field of [`Tuned`] must match to the bit.
fn assert_bit_identical(tag: &str, a: &Tuned, b: &Tuned) {
    assert_eq!(a.config, b.config, "{tag}: chosen config diverged");
    assert_eq!(
        a.eval.time.as_secs().to_bits(),
        b.eval.time.as_secs().to_bits(),
        "{tag}: eval time diverged"
    );
    assert_eq!(
        a.eval.kernel_time.as_secs().to_bits(),
        b.eval.kernel_time.as_secs().to_bits(),
        "{tag}: kernel time diverged"
    );
    assert_eq!(
        a.eval.quality.to_bits(),
        b.eval.quality.to_bits(),
        "{tag}: quality diverged"
    );
    assert_eq!(
        a.baseline_time.as_secs().to_bits(),
        b.baseline_time.as_secs().to_bits(),
        "{tag}: baseline diverged"
    );
    assert_eq!(a.trials, b.trials, "{tag}: charged-trial count diverged");
    assert_eq!(a.cache_hits, b.cache_hits, "{tag}: cache hits diverged");
}

/// The tear a crash at boundary `k` injects — cycling through all three
/// modes, with tear sizes covering 1..=36 (strictly inside one record).
fn tear_for(k: u64) -> TearMode {
    let bytes = 1 + (k % 36) as u32;
    match k % 3 {
        0 => TearMode::Clean,
        1 => TearMode::Truncate { bytes },
        _ => TearMode::Garbage { bytes },
    }
}

struct Case {
    kind: BenchKind,
    plan: FaultPlan,
    toq: f64,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            kind: BenchKind::Gemm,
            plan: FaultPlan::none(),
            toq: 0.9,
        },
        Case {
            kind: BenchKind::Atax,
            plan: FaultPlan::seeded(mixed(7))
                .with_transfer_failures(0.05)
                .with_clock_noise(0.2),
            toq: 0.9,
        },
        Case {
            kind: BenchKind::Bicg,
            plan: FaultPlan::seeded(mixed(23))
                .with_launch_failures(0.04)
                .with_buffer_corruption(0.02),
            toq: 0.95,
        },
        Case {
            kind: BenchKind::Mvt,
            plan: FaultPlan::seeded(mixed(41)).with_clock_noise(0.35),
            toq: 0.9,
        },
    ]
}

/// Interrupt one case's tune at every trial boundary and resume each
/// time, returning how many kill-and-resume cycles were exercised.
fn drill_case(idx: usize, case: &Case) -> u64 {
    let system = SystemModel::system1().with_faults(case.plan.clone());
    let db = SystemInspector::inspect(&system);
    let tuner = PreScaler::new(&system, &db, case.toq);
    let app = PolyApp::tiny(case.kind);
    let tag = format!("case{idx}_{}", app.name());

    // Uninterrupted reference run (its own journal, never killed).
    let ref_path = temp_journal(&format!("{tag}_ref"));
    std::fs::remove_file(&ref_path).ok();
    let reference = tune_durable(&tuner, &app, &ref_path).expect("reference tune");
    let executions = reference.stats.executions as u64;
    assert!(executions >= 3, "{tag}: too few executions to drill");

    for boundary in 1..=executions {
        let path = temp_journal(&format!("{tag}_b{boundary}"));
        std::fs::remove_file(&path).ok();
        let crash = CrashPoint::at(boundary).with_tear(tear_for(boundary));
        let killed =
            tune_durable_with_crash(&tuner, &app, &path, Some(crash)).expect("journal opens fresh");
        assert!(
            killed.is_none(),
            "{tag}: boundary {boundary} <= {executions} must kill the run"
        );

        let resumed: DurableReport = tune_durable(&tuner, &app, &path).expect("resume after crash");
        assert_bit_identical(
            &format!("{tag} boundary {boundary}"),
            &reference.tuned,
            &resumed.tuned,
        );
        // Zero completed trials re-charged: every replayed record is
        // answered from the cache, so the resumed run re-executes only
        // what the (possibly torn) journal had not made durable.
        assert_eq!(
            resumed.stats.executions as u64 + resumed.replayed as u64,
            executions,
            "{tag}: boundary {boundary} re-executed a journaled trial"
        );
        match tear_for(boundary) {
            // An intact journal holds exactly `boundary` records.
            TearMode::Clean => assert_eq!(
                resumed.replayed as u64, boundary,
                "{tag}: boundary {boundary} replay count"
            ),
            // A torn tail loses exactly the final record; garbage after
            // a clean record loses nothing (the scan drops the junk).
            TearMode::Truncate { .. } => assert_eq!(
                resumed.replayed as u64,
                boundary - 1,
                "{tag}: boundary {boundary} torn replay count"
            ),
            TearMode::Garbage { .. } => {
                assert_eq!(
                    resumed.replayed as u64, boundary,
                    "{tag}: boundary {boundary} garbage replay count"
                );
                assert!(
                    resumed.recovery.repaired(),
                    "{tag}: garbage tail must be repaired"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    // A boundary past the last execution never fires: the run completes
    // with the crash still armed and matches the reference.
    let path = temp_journal(&format!("{tag}_past"));
    std::fs::remove_file(&path).ok();
    let crash = CrashPoint::at(executions + 5);
    let report = tune_durable_with_crash(&tuner, &app, &path, Some(crash))
        .expect("journal opens fresh")
        .expect("crash past the end never fires");
    assert_bit_identical(&format!("{tag} past-end"), &reference.tuned, &report.tuned);

    std::fs::remove_file(&ref_path).ok();
    std::fs::remove_file(&path).ok();
    executions
}

#[test]
fn every_trial_boundary_resumes_bit_identically() {
    let mut drills = 0;
    for (idx, case) in cases().iter().enumerate() {
        drills += drill_case(idx, case);
    }
    assert!(
        drills >= 25,
        "expected a substantive boundary sweep per seed, got {drills}"
    );
}

/// Seeded crash points (the ci.sh smoke path) must also resume cleanly:
/// a batch of seeds derived from the matrix seed, each killing one tune
/// at a seeded boundary with a seeded tear.
#[test]
fn seeded_crash_points_resume_bit_identically() {
    let system = SystemModel::system1();
    let db = SystemInspector::inspect(&system);
    let tuner = PreScaler::new(&system, &db, 0.9);
    let app = PolyApp::tiny(BenchKind::Gemm);

    let ref_path = temp_journal("seeded_ref");
    std::fs::remove_file(&ref_path).ok();
    let reference = tune_durable(&tuner, &app, &ref_path).expect("reference tune");
    let executions = reference.stats.executions as u64;

    for s in 0..12u64 {
        let path = temp_journal(&format!("seeded_{s}"));
        std::fs::remove_file(&path).ok();
        let crash = CrashPoint::seeded(mixed(s), executions);
        let killed =
            tune_durable_with_crash(&tuner, &app, &path, Some(crash)).expect("journal opens fresh");
        assert!(killed.is_none(), "seeded boundary lands within the run");
        let resumed = tune_durable(&tuner, &app, &path).expect("resume");
        assert_bit_identical(&format!("seed {s}"), &reference.tuned, &resumed.tuned);
        assert_eq!(
            resumed.stats.executions as u64 + resumed.replayed as u64,
            executions,
            "seed {s}: a journaled trial was re-executed"
        );
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_file(&ref_path).ok();
}
